"""Bulk (vectorized) relational operators over BATs.

This module is the reproduction of MonetDB's operator kernel: every
operator consumes whole columns and produces whole columns, the
bulk-processing model the paper contrasts with tuple-at-a-time volcano
engines. Selections produce *candidate lists* (sorted int64 position
arrays) that later operators use for late tuple reconstruction — these are
exactly the intermediates DataCell caches for incremental window
processing.

Boolean results use MonetDB-style three-valued logic encoded in int8:
``1`` true, ``0`` false, ``-1`` unknown (nil). :func:`mask_select` turns a
boolean column into a candidate list by keeping only true positions.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import KernelError
from repro.mal.bat import BAT, all_candidates, empty_candidates
from repro.storage import types as dt

Candidates = np.ndarray
Scalar = Union[int, float, str, bool, None]

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


# ---------------------------------------------------------------------
# selections
# ---------------------------------------------------------------------

def select_range(bat: BAT, low: Scalar, high: Scalar,
                 low_inclusive: bool = True, high_inclusive: bool = True,
                 cand: Optional[Candidates] = None,
                 anti: bool = False) -> Candidates:
    """Range selection: positions whose value lies in [low, high].

    ``None`` bounds are unbounded. Nil values never qualify (and never
    qualify for ``anti`` either, per SQL comparison semantics).
    """
    values = bat.values
    if cand is not None:
        values = values[cand]
    valid = ~dt.nil_mask(bat.dtype, values)
    keep = valid.copy()
    if low is not None:
        low = dt.coerce_value(bat.dtype, low)
        keep &= _compare_array(bat.dtype, values,
                               ">=" if low_inclusive else ">", low) == 1
    if high is not None:
        high = dt.coerce_value(bat.dtype, high)
        keep &= _compare_array(bat.dtype, values,
                               "<=" if high_inclusive else "<", high) == 1
    if anti:
        keep = valid & ~keep
    positions = np.nonzero(keep)[0].astype(np.int64)
    if cand is not None:
        positions = cand[positions]
    return positions


def theta_select(bat: BAT, op: str, value: Scalar,
                 cand: Optional[Candidates] = None) -> Candidates:
    """Selection with a single comparison operator against a constant."""
    if op not in _CMP_OPS:
        raise KernelError(f"theta_select: bad operator {op!r}")
    if value is None:
        return empty_candidates()
    value = dt.coerce_value(bat.dtype, value)
    values = bat.values
    if cand is not None:
        values = values[cand]
    mask = _compare_array(bat.dtype, values, op, value) == 1
    positions = np.nonzero(mask)[0].astype(np.int64)
    if cand is not None:
        positions = cand[positions]
    return positions


def mask_select(mask_bat: BAT, cand: Optional[Candidates] = None) -> Candidates:
    """Positions where a BOOLEAN column is true (1); nil/false dropped."""
    if mask_bat.dtype != dt.BOOLEAN:
        raise KernelError("mask_select expects a BOOLEAN BAT")
    mask = mask_bat.values == 1
    positions = np.nonzero(mask)[0].astype(np.int64)
    if cand is not None:
        positions = cand[positions]
    return positions


def nil_select(bat: BAT, cand: Optional[Candidates] = None,
               anti: bool = False) -> Candidates:
    """Positions whose value IS NULL (or IS NOT NULL with ``anti``)."""
    values = bat.values
    if cand is not None:
        values = values[cand]
    mask = dt.nil_mask(bat.dtype, values)
    if anti:
        mask = ~mask
    positions = np.nonzero(mask)[0].astype(np.int64)
    if cand is not None:
        positions = cand[positions]
    return positions


def in_select(bat: BAT, needles: Sequence[Scalar],
              cand: Optional[Candidates] = None,
              anti: bool = False) -> Candidates:
    """Positions whose value appears in *needles* (SQL IN list)."""
    values = bat.values
    if cand is not None:
        values = values[cand]
    coerced = [dt.coerce_value(bat.dtype, n) for n in needles
               if n is not None]
    valid = ~dt.nil_mask(bat.dtype, values)
    if bat.dtype.is_string:
        needle_set = set(coerced)
        mask = np.array([v in needle_set for v in values], dtype=bool)
    else:
        mask = np.isin(values, np.asarray(coerced, dtype=bat.dtype.np_dtype))
    mask &= valid
    if anti:
        mask = valid & ~mask
    positions = np.nonzero(mask)[0].astype(np.int64)
    if cand is not None:
        positions = cand[positions]
    return positions


def like_select(bat: BAT, pattern: str, cand: Optional[Candidates] = None,
                anti: bool = False) -> Candidates:
    """SQL LIKE selection over a STRING column (% and _ wildcards)."""
    if not bat.dtype.is_string:
        raise KernelError("like_select expects a STRING BAT")
    rx = like_to_regex(pattern)
    values = bat.values
    if cand is not None:
        values = values[cand]
    mask = np.array(
        [v is not None and rx.match(v) is not None for v in values],
        dtype=bool)
    if anti:
        valid = np.array([v is not None for v in values], dtype=bool)
        mask = valid & ~mask
    positions = np.nonzero(mask)[0].astype(np.int64)
    if cand is not None:
        positions = cand[positions]
    return positions


def like_to_regex(pattern: str) -> "re.Pattern":
    """Compile a SQL LIKE pattern into an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


# ---------------------------------------------------------------------
# projection / reconstruction
# ---------------------------------------------------------------------

def fetch(bat: BAT, cand: Candidates) -> BAT:
    """Late tuple reconstruction (MonetDB ``algebra.projection``).

    Gathers the values of *bat* at candidate positions into a fresh BAT.
    """
    return bat.take(np.asarray(cand, dtype=np.int64))


def const_column(dtype: dt.DataType, value: Scalar, n: int) -> BAT:
    """A BAT repeating one constant n times (for literal projections)."""
    value = dt.coerce_value(dtype, value)
    if dtype.is_string:
        out = BAT(dtype)
        out.extend([value] * n)
        return out
    return BAT.adopt_array(dtype, np.full(n, value, dtype=dtype.np_dtype))


# ---------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------

def hashjoin(left: BAT, right: BAT,
             lcand: Optional[Candidates] = None,
             rcand: Optional[Candidates] = None
             ) -> Tuple[Candidates, Candidates]:
    """Equi-join two columns; returns matching (left, right) positions.

    Builds a hash table on the smaller side. Nil never matches anything
    (including other nils), per SQL semantics. Output pairs are ordered by
    left position (stable), matching MonetDB's join result ordering.
    """
    lpos = lcand if lcand is not None else all_candidates(len(left))
    rpos = rcand if rcand is not None else all_candidates(len(right))
    lvals = left.values[lpos]
    rvals = right.values[rpos]
    lvalid = ~dt.nil_mask(left.dtype, lvals)
    rvalid = ~dt.nil_mask(right.dtype, rvals)

    # build on the smaller valid side, probe with the other
    build_left = lvalid.sum() <= rvalid.sum()
    if build_left:
        build_vals, build_pos, build_valid = lvals, lpos, lvalid
        probe_vals, probe_pos, probe_valid = rvals, rpos, rvalid
    else:
        build_vals, build_pos, build_valid = rvals, rpos, rvalid
        probe_vals, probe_pos, probe_valid = lvals, lpos, lvalid

    table: Dict = {}
    for i in np.nonzero(build_valid)[0]:
        table.setdefault(build_vals[i], []).append(build_pos[i])

    out_build: List[int] = []
    out_probe: List[int] = []
    for i in np.nonzero(probe_valid)[0]:
        matches = table.get(probe_vals[i])
        if matches:
            out_probe.extend([probe_pos[i]] * len(matches))
            out_build.extend(matches)

    build_arr = np.asarray(out_build, dtype=np.int64)
    probe_arr = np.asarray(out_probe, dtype=np.int64)
    if build_left:
        lres, rres = build_arr, probe_arr
    else:
        lres, rres = probe_arr, build_arr
    order = np.lexsort((rres, lres))
    return lres[order], rres[order]


def left_outer_pairs(left: BAT, right: BAT
                     ) -> Tuple[Candidates, Candidates]:
    """Left outer equi-join: every left position appears at least once;
    unmatched left rows pair with right position ``-1`` (nil marker).
    Output ordered by left position."""
    lpos, rpos = hashjoin(left, right)
    matched = np.unique(lpos)
    unmatched = np.setdiff1d(np.arange(len(left), dtype=np.int64),
                             matched, assume_unique=True)
    lres = np.concatenate([lpos, unmatched])
    rres = np.concatenate([rpos, np.full(len(unmatched), -1,
                                         dtype=np.int64)])
    order = np.lexsort((rres, lres))
    return lres[order], rres[order]


def fetch_outer(bat: BAT, cand: Candidates) -> BAT:
    """Like :func:`fetch` but position ``-1`` yields nil (the
    projection step after an outer join)."""
    cand = np.asarray(cand, dtype=np.int64)
    missing = cand == -1
    if not missing.any():
        return bat.take(cand)
    safe = np.where(missing, 0, cand)
    out = bat.take(safe)
    values = out.values
    if bat.dtype.is_string:
        for i in np.nonzero(missing)[0]:
            values[i] = None
    else:
        values[missing] = bat.dtype.nil
    return out


def semi_pairs(left: BAT, right: BAT, anti: bool = False) -> Candidates:
    """Left positions qualifying an IN / NOT IN subquery against
    *right*, with SQL NULL semantics:

    * ``IN``: a left nil never qualifies;
    * ``NOT IN``: if the right side contains any nil, **no** row
      qualifies (the comparison is UNKNOWN for every row); a left nil
      never qualifies either.
    """
    lvalid = ~dt.nil_mask(left.dtype, left.values)
    rnil = dt.nil_mask(right.dtype, right.values)
    if anti and rnil.any():
        return empty_candidates()
    rvals = right.values[~rnil]
    if left.dtype.is_string:
        needles = set(rvals.tolist())
        hit = np.array([v in needles for v in left.values], dtype=bool)
    else:
        hit = np.isin(left.values, rvals)
    keep = (lvalid & ~hit) if anti else (lvalid & hit)
    return np.nonzero(keep)[0].astype(np.int64)


def build_hash_table(bat: BAT,
                     cand: Optional[Candidates] = None) -> Dict:
    """Materialize the hash table side of a join for reuse.

    DataCell's incremental join caches these per basic window so a new
    slide only probes, never rebuilds.
    """
    pos = cand if cand is not None else all_candidates(len(bat))
    vals = bat.values[pos]
    valid = ~dt.nil_mask(bat.dtype, vals)
    table: Dict = {}
    for i in np.nonzero(valid)[0]:
        table.setdefault(vals[i], []).append(int(pos[i]))
    return table


def probe_hash_table(table: Dict, bat: BAT,
                     cand: Optional[Candidates] = None
                     ) -> Tuple[Candidates, Candidates]:
    """Probe a prebuilt hash table; returns (probe, build) positions."""
    pos = cand if cand is not None else all_candidates(len(bat))
    vals = bat.values[pos]
    valid = ~dt.nil_mask(bat.dtype, vals)
    out_probe: List[int] = []
    out_build: List[int] = []
    for i in np.nonzero(valid)[0]:
        matches = table.get(vals[i])
        if matches:
            out_probe.extend([int(pos[i])] * len(matches))
            out_build.extend(matches)
    return (np.asarray(out_probe, dtype=np.int64),
            np.asarray(out_build, dtype=np.int64))


# ---------------------------------------------------------------------
# grouping and aggregation
# ---------------------------------------------------------------------

def factorize(bat: BAT, cand: Optional[Candidates] = None
              ) -> Tuple[np.ndarray, Candidates]:
    """Dense group ids for one column.

    Returns ``(gids, representatives)`` where ``gids[i]`` is the group of
    row ``i`` (of the candidate selection) and ``representatives[g]`` is
    the position of the first row of group ``g``. Nils form one group
    (SQL GROUP BY collapses NULLs).
    """
    pos = cand if cand is not None else all_candidates(len(bat))
    values = bat.values[pos]
    if bat.dtype.is_string:
        mapping: Dict = {}
        reps: List[int] = []
        gids = np.empty(len(values), dtype=np.int64)
        for i, v in enumerate(values):
            key = v  # None hashes fine
            g = mapping.get(key)
            if g is None:
                g = len(reps)
                mapping[key] = g
                reps.append(int(pos[i]))
            gids[i] = g
        return gids, np.asarray(reps, dtype=np.int64)
    # numeric: nils already map to one sentinel value, so unique suffices
    uniq, first_idx, inverse = np.unique(values, return_index=True,
                                         return_inverse=True)
    # renumber groups by first appearance for deterministic ordering
    order = np.argsort(first_idx, kind="stable")
    remap = np.empty(len(uniq), dtype=np.int64)
    remap[order] = np.arange(len(uniq), dtype=np.int64)
    gids = remap[inverse]
    reps = pos[np.sort(first_idx)]
    return gids, np.asarray(reps, dtype=np.int64)


def subgroup(bat: BAT, prev_gids: Optional[np.ndarray],
             cand: Optional[Candidates] = None
             ) -> Tuple[np.ndarray, Candidates, int]:
    """Refine an existing grouping with one more column (MonetDB
    ``group.subgroup``). With ``prev_gids=None`` this starts a grouping.

    Returns ``(gids, representatives, ngroups)``.
    """
    gids, reps = factorize(bat, cand)
    if prev_gids is None:
        return gids, reps, int(gids.max()) + 1 if len(gids) else 0
    if len(prev_gids) != len(gids):
        raise KernelError("subgroup: group id length mismatch")
    ncols = int(gids.max()) + 1 if len(gids) else 0
    combined = prev_gids * max(ncols, 1) + gids
    uniq, first_idx, inverse = np.unique(combined, return_index=True,
                                         return_inverse=True)
    order = np.argsort(first_idx, kind="stable")
    remap = np.empty(len(uniq), dtype=np.int64)
    remap[order] = np.arange(len(uniq), dtype=np.int64)
    new_gids = remap[inverse]
    pos = cand if cand is not None else all_candidates(len(bat))
    new_reps = pos[np.sort(first_idx)]
    return new_gids, np.asarray(new_reps, dtype=np.int64), len(uniq)


def _grouped_valid(bat: BAT, gids: np.ndarray,
                   cand: Optional[Candidates]) -> Tuple[np.ndarray, np.ndarray]:
    pos = cand if cand is not None else all_candidates(len(bat))
    if len(pos) != len(gids):
        raise KernelError("aggregate: candidate/group length mismatch")
    values = bat.values[pos]
    valid = ~dt.nil_mask(bat.dtype, values)
    return values, valid


def agg_count(gids: np.ndarray, ngroups: int,
              bat: Optional[BAT] = None,
              cand: Optional[Candidates] = None) -> BAT:
    """Per-group COUNT(*) (no column) or COUNT(col) (nil-skipping)."""
    if bat is None:
        counts = np.bincount(gids, minlength=ngroups)
    else:
        _values, valid = _grouped_valid(bat, gids, cand)
        counts = np.bincount(gids[valid], minlength=ngroups)
    return BAT.from_array(dt.INT, counts.astype(np.int64))


def agg_sum(bat: BAT, gids: np.ndarray, ngroups: int,
            cand: Optional[Candidates] = None) -> BAT:
    """Per-group SUM; empty groups yield nil. INT stays INT."""
    values, valid = _grouped_valid(bat, gids, cand)
    if not bat.dtype.is_numeric:
        raise KernelError(f"sum over non-numeric column {bat.dtype}")
    out_type = bat.dtype
    # note: bincount returns int64 when the weights array is empty
    sums = np.bincount(gids[valid],
                       weights=values[valid].astype(np.float64),
                       minlength=ngroups).astype(np.float64)
    counts = np.bincount(gids[valid], minlength=ngroups)
    if out_type is dt.INT:
        result = sums.astype(np.int64)
        result[counts == 0] = dt.INT_NIL
        return BAT.from_array(dt.INT, result)
    result = sums
    result[counts == 0] = np.nan
    return BAT.from_array(dt.FLOAT, result)


def agg_avg(bat: BAT, gids: np.ndarray, ngroups: int,
            cand: Optional[Candidates] = None) -> BAT:
    """Per-group AVG (always FLOAT); empty groups yield nil."""
    values, valid = _grouped_valid(bat, gids, cand)
    if not bat.dtype.is_numeric:
        raise KernelError(f"avg over non-numeric column {bat.dtype}")
    sums = np.bincount(gids[valid],
                       weights=values[valid].astype(np.float64),
                       minlength=ngroups).astype(np.float64)
    counts = np.bincount(gids[valid], minlength=ngroups)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = sums / counts
    result[counts == 0] = np.nan
    return BAT.from_array(dt.FLOAT, result)


def _agg_extreme(bat: BAT, gids: np.ndarray, ngroups: int,
                 cand: Optional[Candidates], take_min: bool) -> BAT:
    values, valid = _grouped_valid(bat, gids, cand)
    if bat.dtype.is_string:
        best: List = [None] * ngroups
        for g, v in zip(gids[valid], values[valid]):
            cur = best[g]
            if cur is None or (v < cur if take_min else v > cur):
                best[g] = v
        return BAT.from_values(dt.STRING, best)
    fill = np.inf if take_min else -np.inf
    acc = np.full(ngroups, fill, dtype=np.float64)
    op = np.minimum if take_min else np.maximum
    op.at(acc, gids[valid], values[valid].astype(np.float64))
    counts = np.bincount(gids[valid], minlength=ngroups)
    if bat.dtype is dt.FLOAT:
        acc[counts == 0] = np.nan
        return BAT.from_array(dt.FLOAT, acc)
    out = np.empty(ngroups, dtype=np.int64)
    nonempty = counts > 0
    out[nonempty] = acc[nonempty].astype(np.int64)
    out[~nonempty] = dt.INT_NIL
    return BAT.from_array(bat.dtype, out)


def agg_min(bat: BAT, gids: np.ndarray, ngroups: int,
            cand: Optional[Candidates] = None) -> BAT:
    """Per-group MIN; empty groups yield nil."""
    return _agg_extreme(bat, gids, ngroups, cand, take_min=True)


def agg_max(bat: BAT, gids: np.ndarray, ngroups: int,
            cand: Optional[Candidates] = None) -> BAT:
    """Per-group MAX; empty groups yield nil."""
    return _agg_extreme(bat, gids, ngroups, cand, take_min=False)


def _moments(bat: BAT, gids: np.ndarray, ngroups: int,
             cand: Optional[Candidates]
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group (count, sum, sum of squares) over non-nil values —
    the mergeable state behind variance/stddev."""
    values, valid = _grouped_valid(bat, gids, cand)
    if not bat.dtype.is_numeric:
        raise KernelError(f"variance over non-numeric column {bat.dtype}")
    vv = values[valid].astype(np.float64)
    gg = gids[valid]
    counts = np.bincount(gg, minlength=ngroups).astype(np.float64)
    sums = np.bincount(gg, weights=vv, minlength=ngroups
                       ).astype(np.float64)
    sumsq = np.bincount(gg, weights=vv * vv, minlength=ngroups
                        ).astype(np.float64)
    return counts, sums, sumsq


def variance_from_moments(count: float, total: float,
                          total_sq: float) -> Optional[float]:
    """Sample variance from (n, Σx, Σx²); None below two samples."""
    if count < 2:
        return None
    var = (total_sq - total * total / count) / (count - 1)
    return max(var, 0.0)  # clamp tiny negative rounding residue


def agg_variance(bat: BAT, gids: np.ndarray, ngroups: int,
                 cand: Optional[Candidates] = None) -> BAT:
    """Per-group sample variance; groups with <2 values yield nil."""
    counts, sums, sumsq = _moments(bat, gids, ngroups, cand)
    out = np.full(ngroups, np.nan, dtype=np.float64)
    for g in range(ngroups):
        var = variance_from_moments(counts[g], sums[g], sumsq[g])
        if var is not None:
            out[g] = var
    return BAT.from_array(dt.FLOAT, out)


def agg_stddev(bat: BAT, gids: np.ndarray, ngroups: int,
               cand: Optional[Candidates] = None) -> BAT:
    """Per-group sample standard deviation."""
    var = agg_variance(bat, gids, ngroups, cand)
    return BAT.from_array(dt.FLOAT, np.sqrt(var.values))


# -- weighted (Z-set) aggregation -------------------------------------
#
# Delta execution represents a window change as a Z-set: rows carry an
# integer weight (+1 insert, -1 retraction, +-k after consolidation).
# The kernels below compute per-group *signed* contributions; summed
# into running states they realize O(delta) sliding aggregates. Counts
# go through float bincount but are exact (integer-valued float64) and
# are rounded back to int64.


def weighted_count(gids: np.ndarray, weights: np.ndarray,
                   ngroups: int) -> np.ndarray:
    """Per-group signed multiplicity ``sum(w)`` as int64."""
    if len(gids) == 0:
        return np.zeros(ngroups, dtype=np.int64)
    out = np.bincount(gids, weights=weights.astype(np.float64),
                      minlength=ngroups)
    return np.rint(out).astype(np.int64)


def weighted_sum(bat: BAT, gids: np.ndarray, weights: np.ndarray,
                 ngroups: int, cand: Optional[Candidates] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group signed ``(sum(w*v), sum(w))`` over non-nil values."""
    values, valid = _grouped_valid(bat, gids, cand)
    if not bat.dtype.is_numeric:
        raise KernelError(f"sum over non-numeric column {bat.dtype}")
    vv = values[valid].astype(np.float64)
    gg = gids[valid]
    ww = weights[valid].astype(np.float64)
    sums = np.bincount(gg, weights=ww * vv, minlength=ngroups
                       ).astype(np.float64)
    counts = np.rint(np.bincount(gg, weights=ww, minlength=ngroups)
                     ).astype(np.int64)
    return sums, counts


def weighted_moments(bat: BAT, gids: np.ndarray, weights: np.ndarray,
                     ngroups: int, cand: Optional[Candidates] = None
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-group signed ``(sum(w), sum(w*v), sum(w*v^2))`` moments."""
    values, valid = _grouped_valid(bat, gids, cand)
    if not bat.dtype.is_numeric:
        raise KernelError(f"variance over non-numeric column {bat.dtype}")
    vv = values[valid].astype(np.float64)
    gg = gids[valid]
    ww = weights[valid].astype(np.float64)
    counts = np.bincount(gg, weights=ww, minlength=ngroups
                         ).astype(np.float64)
    sums = np.bincount(gg, weights=ww * vv, minlength=ngroups
                       ).astype(np.float64)
    sumsq = np.bincount(gg, weights=ww * vv * vv, minlength=ngroups
                        ).astype(np.float64)
    return counts, sums, sumsq


def zset_consolidate(bats: Sequence[BAT], weights: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Merge duplicate rows of a Z-set, summing weights.

    Returns ``(positions, weights)``: one representative position per
    distinct row whose summed weight is non-zero (first-appearance
    order), with its consolidated weight. An empty or fully-cancelled
    Z-set returns two empty arrays.
    """
    n = len(weights)
    if n == 0 or not bats:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    gids: Optional[np.ndarray] = None
    reps: Candidates = all_candidates(n)
    ngroups = n
    for bat in bats:
        gids, reps, ngroups = subgroup(bat, gids)
    sums = np.rint(np.bincount(gids, weights=weights.astype(np.float64),
                               minlength=ngroups)).astype(np.int64)
    keep = sums != 0
    return np.asarray(reps, dtype=np.int64)[keep], sums[keep]


_SCALARS: Dict[str, Callable] = {}


def scalar_agg(op: str, bat: Optional[BAT],
               cand: Optional[Candidates] = None) -> Scalar:
    """Whole-column aggregate (no GROUP BY). Returns a Python value.

    ``count`` over an empty input is 0; other aggregates yield None.
    """
    if op == "count" and bat is None:
        raise KernelError("scalar count(*) needs an explicit row count")
    pos = cand if cand is not None else all_candidates(len(bat))
    values = bat.values[pos]
    valid = ~dt.nil_mask(bat.dtype, values)
    values = values[valid]
    if op == "count":
        return int(len(values))
    if len(values) == 0:
        return None
    if op == "sum":
        total = values.astype(np.float64).sum()
        return int(total) if bat.dtype is dt.INT else float(total)
    if op == "avg":
        return float(values.astype(np.float64).mean())
    if op == "min":
        return dt.from_storage(bat.dtype, values.min())
    if op == "max":
        return dt.from_storage(bat.dtype, values.max())
    if op in ("variance", "stddev"):
        vv = values.astype(np.float64)
        var = variance_from_moments(float(len(vv)), float(vv.sum()),
                                    float((vv * vv).sum()))
        if var is None:
            return None
        return var if op == "variance" else float(np.sqrt(var))
    raise KernelError(f"unknown scalar aggregate {op!r}")


# ---------------------------------------------------------------------
# sorting, slicing, distinct
# ---------------------------------------------------------------------

def _sort_key(bat: BAT, cand: Candidates, descending: bool) -> np.ndarray:
    """Numeric sort key with nils first in ascending order (SQL default
    NULLS FIRST in MonetDB)."""
    values = bat.values[cand]
    if bat.dtype.is_string:
        # rank strings; None ranks lowest
        uniq = sorted({v for v in values if v is not None})
        ranks = {v: i + 1 for i, v in enumerate(uniq)}
        key = np.array([0 if v is None else ranks[v] for v in values],
                       dtype=np.float64)
    elif bat.dtype is dt.FLOAT:
        key = values.astype(np.float64).copy()
        key[np.isnan(key)] = -np.inf
    else:
        key = values.astype(np.float64)
        key[values == dt.INT_NIL] = -np.inf
    return -key if descending else key


def sort_positions(bats: Sequence[BAT], descending: Sequence[bool],
                   cand: Optional[Candidates] = None) -> Candidates:
    """Stable multi-key sort; returns positions in output order."""
    if not bats:
        raise KernelError("sort needs at least one key column")
    pos = cand if cand is not None else all_candidates(len(bats[0]))
    keys = [_sort_key(b, pos, d) for b, d in zip(bats, descending)]
    order = np.lexsort(tuple(reversed(keys)))
    return pos[order]


def slice_candidates(cand: Candidates, offset: int,
                     limit: Optional[int]) -> Candidates:
    """LIMIT/OFFSET over an ordered candidate list."""
    if limit is None:
        return cand[offset:]
    return cand[offset:offset + limit]


def distinct(bats: Sequence[BAT],
             cand: Optional[Candidates] = None) -> Candidates:
    """Positions of the first occurrence of each distinct row."""
    if not bats:
        raise KernelError("distinct needs at least one column")
    gids = None
    reps = None
    for bat in bats:
        gids, reps, _n = subgroup(bat, gids, cand)
    return np.sort(reps)


# ---------------------------------------------------------------------
# candidate-list algebra
# ---------------------------------------------------------------------

def cand_intersect(a: Candidates, b: Candidates) -> Candidates:
    return np.intersect1d(a, b, assume_unique=True)


def cand_union(a: Candidates, b: Candidates) -> Candidates:
    return np.union1d(a, b)


def cand_difference(a: Candidates, b: Candidates) -> Candidates:
    return np.setdiff1d(a, b, assume_unique=True)


# ---------------------------------------------------------------------
# column calculator (batcalc.*)
# ---------------------------------------------------------------------

def _broadcast(a, b) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray],
                              Optional[np.ndarray], dt.DataType,
                              dt.DataType, int]:
    """Align BAT/scalar operands into numpy arrays plus nil masks."""
    a_bat = isinstance(a, BAT)
    b_bat = isinstance(b, BAT)
    if not a_bat and not b_bat:
        raise KernelError("batcalc needs at least one BAT operand")
    n = len(a) if a_bat else len(b)
    if a_bat and b_bat and len(a) != len(b):
        raise KernelError(f"batcalc length mismatch {len(a)} vs {len(b)}")

    def prep(x, x_is_bat):
        if x_is_bat:
            return x.values, dt.nil_mask(x.dtype, x.values), x.dtype
        xtype = dt.infer_type(x) if x is not None else None
        if x is None:
            return None, None, None
        return x, None, xtype

    av, amask, atype = prep(a, a_bat)
    bv, bmask, btype = prep(b, b_bat)
    return av, bv, amask, bmask, atype, btype, n


def calc_arith(op: str, a, b) -> BAT:
    """Elementwise arithmetic with nil propagation.

    ``op`` in ``+ - * / %``. Division always yields FLOAT; division by
    zero yields nil (the streaming engine must not abort a standing query
    on one bad tuple — the row simply produces NULL).
    """
    if op in ("+", "-", "*"):
        # Pure-float fast path: NaN (the FLOAT nil) propagates through
        # + - * by itself, so float columns against float columns or
        # bare numeric scalars need no nil-mask pass at all.
        x = y = None
        if type(a) is BAT and a.dtype is dt.FLOAT:
            x = a.values
        elif type(a) in (int, float):
            x = a
        if type(b) is BAT and b.dtype is dt.FLOAT:
            y = b.values
        elif type(b) in (int, float):
            y = b
        x_arr = isinstance(x, np.ndarray)
        y_arr = isinstance(y, np.ndarray)
        if (x is not None and y is not None and (x_arr or y_arr)
                and not (x_arr and y_arr and len(x) != len(y))):
            res = (x + y) if op == "+" else (x - y) if op == "-" \
                else (x * y)
            return BAT.adopt_array(dt.FLOAT, res)
    av, bv, amask, bmask, atype, btype, n = _broadcast(a, b)
    if av is None or bv is None:  # NULL literal operand
        some = atype or btype or dt.FLOAT
        out = dt.FLOAT if op == "/" else some
        return const_column(out, None, n)
    if atype.is_string or btype.is_string:
        if op == "+":  # string concatenation
            return _concat_strings(av, bv, amask, bmask, n)
        raise KernelError(f"arithmetic {op!r} over strings")
    out_type = dt.FLOAT if op == "/" else dt.common_type(atype, btype)
    if op in ("+", "-", "*"):
        # Fast path: compute in the operands' native dtype — no errstate
        # context, no float64 round-trip, no extra broadcast/copy. Falls
        # through to the generic path whenever numpy's promotion does not
        # land exactly on the storage dtype (e.g. int8 boolean operands),
        # which keeps legacy semantics for every odd case.
        res = (av + bv) if op == "+" else (av - bv) if op == "-" \
            else (av * bv)
        rdt = getattr(res, "dtype", None)
        if getattr(res, "shape", None) == (n,) and (
                (rdt == np.float64 and out_type is dt.FLOAT)
                or (rdt == np.int64 and out_type is not dt.FLOAT)):
            nil = None
            if amask is not None and amask.any():
                nil = amask if bmask is None else (amask | bmask)
            elif bmask is not None and bmask.any():
                nil = bmask
            if out_type is dt.FLOAT:
                if nil is not None:
                    res[nil] = np.nan
                return BAT.adopt_array(dt.FLOAT, res)
            if nil is not None:
                res[nil] = dt.INT_NIL
            return BAT.adopt_array(out_type, res)
    af = np.asarray(av, dtype=np.float64)
    bf = np.asarray(bv, dtype=np.float64)
    nil = np.zeros(n, dtype=bool)
    if amask is not None:
        nil |= amask
    if bmask is not None:
        nil |= bmask
    with np.errstate(divide="ignore", invalid="ignore"):
        if op == "+":
            res = af + bf
        elif op == "-":
            res = af - bf
        elif op == "*":
            res = af * bf
        elif op == "/":
            res = af / bf
            nil = nil | (np.broadcast_to(bf, (n,)) == 0)
        elif op == "%":
            res = np.mod(af, bf)
            nil = nil | (np.broadcast_to(bf, (n,)) == 0)
        else:
            raise KernelError(f"unknown arithmetic op {op!r}")
    res = np.broadcast_to(res, (n,)).astype(np.float64).copy()
    if out_type is dt.FLOAT:
        res[nil] = np.nan
        return BAT.adopt_array(dt.FLOAT, res)
    res[nil] = 0  # keep the int cast clean; nils rewritten below
    out = res.astype(np.int64)
    out[nil] = dt.INT_NIL
    return BAT.adopt_array(out_type, out)


def _concat_strings(av, bv, amask, bmask, n: int) -> BAT:
    def cell(x, i):
        if isinstance(x, np.ndarray):
            return x[i]
        return x

    out: List[Optional[str]] = []
    for i in range(n):
        x, y = cell(av, i), cell(bv, i)
        out.append(None if x is None or y is None else str(x) + str(y))
    return BAT.from_values(dt.STRING, out)


def calc_neg(a: BAT) -> BAT:
    """Unary minus with nil propagation."""
    if not a.dtype.is_numeric:
        raise KernelError("negation over non-numeric column")
    mask = a.nil_mask()
    if a.dtype is dt.FLOAT:
        return BAT.adopt_array(dt.FLOAT, -a.values)
    out = -a.values
    out[mask] = dt.INT_NIL
    return BAT.adopt_array(dt.INT, out)


def _compare_array(dtype: dt.DataType, values: np.ndarray, op: str,
                   const) -> np.ndarray:
    """Compare a storage array to one constant -> int8 3VL column."""
    valid = ~dt.nil_mask(dtype, values)
    out = np.full(len(values), -1, dtype=np.int8)
    if dtype.is_string:
        cmpmap = {
            "==": lambda v: v == const, "!=": lambda v: v != const,
            "<": lambda v: v < const, "<=": lambda v: v <= const,
            ">": lambda v: v > const, ">=": lambda v: v >= const,
        }
        fn = cmpmap[op]
        res = np.array([bool(fn(v)) if v is not None else False
                        for v in values], dtype=bool)
    else:
        if op == "==":
            res = values == const
        elif op == "!=":
            res = values != const
        elif op == "<":
            res = values < const
        elif op == "<=":
            res = values <= const
        elif op == ">":
            res = values > const
        elif op == ">=":
            res = values >= const
        else:
            raise KernelError(f"unknown comparison {op!r}")
    out[valid] = res[valid].astype(np.int8)
    return out


def calc_cmp(op: str, a, b) -> BAT:
    """Elementwise comparison producing a three-valued BOOLEAN BAT."""
    if op not in _CMP_OPS:
        raise KernelError(f"unknown comparison {op!r}")
    av, bv, amask, bmask, atype, btype, n = _broadcast(a, b)
    if av is None or bv is None:
        return const_column(dt.BOOLEAN, None, n)
    nil = np.zeros(n, dtype=bool)
    if amask is not None:
        nil |= amask
    if bmask is not None:
        nil |= bmask
    if atype.is_string != btype.is_string:
        raise KernelError(f"cannot compare {atype.name} with {btype.name}")
    if atype.is_string:
        aa = av if isinstance(av, np.ndarray) else np.array([av] * n,
                                                            dtype=object)
        bb = bv if isinstance(bv, np.ndarray) else np.array([bv] * n,
                                                            dtype=object)
        res = np.zeros(n, dtype=bool)
        ok = ~nil
        pairs = [(aa[i], bb[i]) for i in np.nonzero(ok)[0]]
        vals = [_str_cmp(op, x, y) for x, y in pairs]
        res[np.nonzero(ok)[0]] = vals
    else:
        # native-dtype compare: positions under the nil mask produce
        # garbage (INT_NIL sentinels, NaN) but are rewritten below, so
        # the float64 round-trip and errstate guard are pure overhead
        if op == "==":
            res = av == bv
        elif op == "!=":
            res = av != bv
        elif op == "<":
            res = av < bv
        elif op == "<=":
            res = av <= bv
        elif op == ">":
            res = av > bv
        else:
            res = av >= bv
        res = np.broadcast_to(res, (n,))
    out = np.where(nil, np.int8(-1), res.astype(np.int8))
    return BAT.adopt_array(dt.BOOLEAN, out.astype(np.int8))


def _str_cmp(op: str, x, y) -> bool:
    if op == "==":
        return x == y
    if op == "!=":
        return x != y
    if op == "<":
        return x < y
    if op == "<=":
        return x <= y
    if op == ">":
        return x > y
    return x >= y


def calc_and(a: BAT, b: BAT) -> BAT:
    """Kleene AND over three-valued BOOLEAN columns."""
    x, y = a.values, b.values
    out = np.where((x == 0) | (y == 0), np.int8(0),
                   np.where((x == -1) | (y == -1), np.int8(-1), np.int8(1)))
    return BAT.adopt_array(dt.BOOLEAN, out.astype(np.int8))


def calc_or(a: BAT, b: BAT) -> BAT:
    """Kleene OR over three-valued BOOLEAN columns."""
    x, y = a.values, b.values
    out = np.where((x == 1) | (y == 1), np.int8(1),
                   np.where((x == -1) | (y == -1), np.int8(-1), np.int8(0)))
    return BAT.adopt_array(dt.BOOLEAN, out.astype(np.int8))


def calc_not(a: BAT) -> BAT:
    """Kleene NOT (unknown stays unknown)."""
    x = a.values
    out = np.where(x == -1, np.int8(-1), (1 - x).astype(np.int8))
    return BAT.adopt_array(dt.BOOLEAN, out.astype(np.int8))


def calc_isnil(a: BAT) -> BAT:
    """IS NULL as a (two-valued) BOOLEAN column."""
    return BAT.from_array(dt.BOOLEAN, a.nil_mask().astype(np.int8))


def calc_cast(a: BAT, target: dt.DataType) -> BAT:
    """CAST a column to *target*, mapping nils to nils."""
    mask = a.nil_mask()
    if target == a.dtype:
        return a.copy()
    src = a.values
    if target is dt.STRING:
        out = [None if m else _render(a.dtype, v)
               for v, m in zip(src, mask)]
        return BAT.from_values(dt.STRING, out)
    if target is dt.FLOAT:
        if a.dtype.is_string:
            try:
                out = [float(v) if not m else np.nan
                       for v, m in zip(src, mask)]
            except ValueError as exc:
                raise KernelError(f"cannot cast to FLOAT: {exc}") from exc
            return BAT.from_array(dt.FLOAT, np.asarray(out, dtype=np.float64))
        res = src.astype(np.float64)
        res[mask] = np.nan
        return BAT.from_array(dt.FLOAT, res)
    if target is dt.INT or target is dt.TIMESTAMP:
        if a.dtype.is_string:
            try:
                out = [int(float(v)) if not m else dt.INT_NIL
                       for v, m in zip(src, mask)]
            except ValueError as exc:
                raise KernelError(f"cannot cast to INT: {exc}") from exc
            return BAT.from_array(target, np.asarray(out, dtype=np.int64))
        res = np.where(mask, 0, src).astype(np.float64)
        res = res.astype(np.int64)
        res[mask] = dt.INT_NIL
        return BAT.from_array(target, res)
    if target is dt.BOOLEAN:
        res = np.where(mask, np.int8(-1),
                       (np.asarray(src, dtype=np.float64) != 0
                        ).astype(np.int8))
        return BAT.from_array(dt.BOOLEAN, res.astype(np.int8))
    raise KernelError(f"unsupported cast to {target}")


def _render(dtype: dt.DataType, value) -> str:
    if dtype is dt.BOOLEAN:
        return "true" if value == 1 else "false"
    if dtype is dt.FLOAT:
        return repr(float(value))
    return str(value)
