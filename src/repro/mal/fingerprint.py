"""Structural fingerprints for MAL instructions and programs.

Two standing queries compiled independently produce MAL programs whose
SSA variable names differ (``X_3`` vs ``X_17``) even when the work they
describe is identical — e.g. thirty-two filter queries over one sensor
stream all start with the same ``basket.bind`` + ``algebra.thetaselect``
prefix. The recycler (:mod:`repro.core.recycler`) needs to recognise
that sharing, so fingerprints canonicalize *lineage*, not names:

* a ``basket.bind`` is identified by its (stream, column) pair — the
  root of all stream lineage;
* every other instruction is identified by its opcode, its constant
  arguments (by value and type) and the fingerprints of the
  instructions that produced its variable arguments;
* SSA numbering therefore never leaks into the digest.

The analysis also tracks, per instruction, the set of input streams in
its lineage (so cache keys can be scoped to the exact basket windows it
read) and whether the instruction is *recyclable* at all: side-effecting
opcodes (``basket.*`` brackets, result delivery) and anything whose
lineage passes through a mutable table bind are excluded.

This is the reproduction of the MonetDB "recycler" lineage (Ivanova et
al., *An architecture for recycling intermediates in a column-store*,
SIGMOD 2009), adapted to DataCell's continuous plans.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.mal.program import Const, Instruction, MALProgram, Var

# opcodes that touch engine state or deliver results: never recycled,
# and they taint nothing (their results, if any, are not values)
_SIDE_EFFECTS = frozenset({
    "basket.lock", "basket.unlock", "basket.drain",
    "basket.emit", "sql.resultSet",
})

# lineage roots over mutable storage: executing them is cheap but their
# output can change between firings without the window moving, so they
# poison recyclability downstream
_MUTABLE_BINDS = frozenset({"sql.bind"})

# stream lineage root: identified by (stream, column), trivially cheap
# to re-execute (a dict lookup into the shared window slice)
_STREAM_BIND = "basket.bind"


class InstructionFP:
    """Fingerprint + recyclability verdict for one instruction.

    ``fp`` — stable hex digest of the canonicalized (opcode, lineage,
    constants) structure; equal digests mean "same work over the same
    inputs, given equal basket windows".
    ``streams`` — the input streams in this instruction's lineage; the
    recycler scopes the cache key to their window oid-ranges.
    ``recyclable`` — True when the result is a pure function of stream
    windows and constants (and is worth caching).
    """

    __slots__ = ("fp", "streams", "recyclable")

    def __init__(self, fp: str, streams: frozenset, recyclable: bool):
        self.fp = fp
        self.streams = streams
        self.recyclable = recyclable

    def __repr__(self) -> str:
        flag = "recyclable" if self.recyclable else "pinned"
        return f"InstructionFP({self.fp}, {sorted(self.streams)}, {flag})"


def _digest(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def _const_token(value) -> str:
    # include the type name so 1, 1.0 and True stay distinct
    return f"c:{type(value).__name__}:{value!r}"


def fingerprint_program(program: MALProgram
                        ) -> List[Optional[InstructionFP]]:
    """Per-instruction fingerprints, aligned with ``instructions``.

    Entries are ``None`` for pure side-effect instructions (nothing to
    name). Multi-result instructions get one shared instruction digest;
    each result variable is tracked as ``digest#<index>``.
    """
    out: List[Optional[InstructionFP]] = []
    # var name -> (lineage token, streams, pure)
    env: Dict[str, tuple] = {}
    for instr in program.instructions:
        info = _fingerprint_instruction(instr, env)
        out.append(info)
        if info is None:
            continue
        pure = info.recyclable or _is_pure_root(instr)
        for i, result in enumerate(instr.results):
            token = info.fp if len(instr.results) == 1 \
                else f"{info.fp}#{i}"
            env[result] = (token, info.streams, pure)
    return out


def _is_pure_root(instr: Instruction) -> bool:
    return instr.opcode == _STREAM_BIND


def _fingerprint_instruction(instr: Instruction, env: Dict[str, tuple]
                             ) -> Optional[InstructionFP]:
    if instr.opcode in _SIDE_EFFECTS:
        return None
    tokens: List[str] = [instr.opcode]
    streams: set = set()
    pure = instr.opcode not in _MUTABLE_BINDS
    for arg in instr.args:
        if isinstance(arg, Var):
            bound = env.get(arg.name)
            if bound is None:
                # unknown provenance (externally injected binding):
                # name it, but refuse to recycle anything built on it
                tokens.append(f"ext:{arg.name}")
                pure = False
                continue
            token, arg_streams, arg_pure = bound
            tokens.append(token)
            streams |= arg_streams
            pure = pure and arg_pure
        elif isinstance(arg, Const):
            tokens.append(_const_token(arg.value))
        else:
            tokens.append(f"raw:{arg!r}")
    if instr.opcode == _STREAM_BIND and instr.args:
        first = instr.args[0]
        if isinstance(first, Const):
            streams.add(str(first.value).lower())
    fp = _digest("(".join(tokens))
    # binds themselves are a dict lookup — fingerprint them (they anchor
    # downstream digests) but do not spend cache space on them
    recyclable = (pure and bool(instr.results)
                  and instr.opcode != _STREAM_BIND)
    return InstructionFP(fp, frozenset(streams), recyclable)


def program_fingerprint(program: MALProgram) -> str:
    """One digest for the whole program's structure (plan identity)."""
    parts: List[str] = []
    for info in fingerprint_program(program):
        parts.append("-" if info is None else info.fp)
    return _digest("|".join(parts))


# ---------------------------------------------------------------------
# per-plan digest cache
# ---------------------------------------------------------------------
#
# A factory's program is static after registration, yet fingerprints
# used to be recomputed wherever they were needed (factory init, plan
# identity, engine registration). The memo below computes the full
# per-instruction analysis at most once per (program, version); the
# program's ``version`` counter invalidates the entry if the program is
# ever mutated after being fingerprinted. Keyed weakly so dropped
# queries do not pin their programs.

_FP_CACHE: "weakref.WeakKeyDictionary[MALProgram, tuple]" = \
    weakref.WeakKeyDictionary()
_FP_STATS = {"hits": 0, "misses": 0}


def _cached_analysis(program: MALProgram) -> tuple:
    version = getattr(program, "version", None)
    entry = _FP_CACHE.get(program)
    if entry is not None and entry[0] == version:
        _FP_STATS["hits"] += 1
        return entry
    _FP_STATS["misses"] += 1
    fps = fingerprint_program(program)
    parts = ["-" if info is None else info.fp for info in fps]
    entry = (version, fps, _digest("|".join(parts)))
    _FP_CACHE[program] = entry
    return entry


def cached_fingerprints(program: MALProgram
                        ) -> List[Optional[InstructionFP]]:
    """Memoized :func:`fingerprint_program` (treat the list as
    read-only — it is shared across callers)."""
    return _cached_analysis(program)[1]


def cached_program_fingerprint(program: MALProgram) -> str:
    """Memoized :func:`program_fingerprint`."""
    return _cached_analysis(program)[2]


def fingerprint_cache_stats() -> Dict[str, int]:
    """Process-wide digest-cache counters (monitor ``.interp`` pane)."""
    return {"fp_cache_hits": _FP_STATS["hits"],
            "fp_cache_misses": _FP_STATS["misses"],
            "fp_cache_entries": len(_FP_CACHE)}


def emit_fingerprint(plan_fp: str,
                     ranges: Iterable[Tuple[str, int, int]]) -> str:
    """Digest identifying one emit payload of a chained plan.

    Combines the producing plan's structural fingerprint
    (:func:`program_fingerprint`) with the absolute oid ranges of the
    stream windows that firing evaluated — the same plan over the same
    windows always emits the same payload, so the digest is a content
    identity for the appended output-basket range. Output baskets
    stamp each appended range with it (:meth:`repro.core.basket.
    Basket.append_stamped`) and the recycler adopts the payload under
    the matching slice key, which is how fingerprint lineage flows
    across a stage boundary instead of stopping at leaf stream
    windows.
    """
    parts = [plan_fp]
    for name, lo, hi in sorted(ranges):
        parts.append(f"{str(name).lower()}:{lo}:{hi}")
    return _digest("|".join(parts))


class EmitStamper:
    """Amortized :func:`emit_fingerprint` for one producing plan.

    A factory stamps every firing with the same plan fingerprint; only
    the window oid-ranges vary. Pre-hashing the plan prefix once and
    cloning the hash state per firing (``hashlib``'s ``copy``) means
    each stamp digests only the few bytes of range text — and produces
    exactly the digest :func:`emit_fingerprint` would, so stamps from
    amortized and unamortized producers always match.
    """

    __slots__ = ("plan_fp", "_base", "stamps")

    def __init__(self, plan_fp: str):
        self.plan_fp = plan_fp
        self._base = hashlib.sha1(plan_fp.encode("utf-8"))
        self.stamps = 0

    def stamp(self, ranges: Iterable[Tuple[str, int, int]]) -> str:
        digest = self._base.copy()
        for name, lo, hi in sorted(ranges):
            digest.update(
                f"|{str(name).lower()}:{lo}:{hi}".encode("utf-8"))
        self.stamps += 1
        return digest.hexdigest()[:16]


def shared_prefix(programs: Sequence[MALProgram]) -> List[str]:
    """Instruction digests every program in *programs* computes.

    A diagnostic helper (the monitor's "how much work is shareable"
    view): returns the fingerprints that occur in all programs'
    recyclable instruction sets.
    """
    if not programs:
        return []
    common: Optional[set] = None
    for program in programs:
        fps = {info.fp for info in fingerprint_program(program)
               if info is not None and info.recyclable}
        common = fps if common is None else common & fps
    return sorted(common or ())
