"""MAL-like programs: the executable form of query plans.

MonetDB compiles SQL into MAL (the MonetDB Assembly Language), a flat
SSA-style instruction sequence over BATs. DataCell's rewriter operates on
that representation: it swaps ``sql.bind`` for ``basket.bind``, brackets
the body with basket locking/draining, and keeps the program resident as
a *factory*. We reproduce the same pipeline so the demo's "how a normal
query plan changes into a continuous plan" can be inspected textually
(:meth:`MALProgram.pretty`).
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import MALError


class Var:
    """A reference to an SSA variable."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


class Const:
    """An inline constant argument."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return '"' + self.value.replace('"', '\\"') + '"'
        if self.value is None:
            return "nil"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        try:
            return hash(("Const", self.value))
        except TypeError:
            return hash(("Const", repr(self.value)))


class Instruction:
    """``(r1, r2, ...) := module.fn(arg, ...)``"""

    __slots__ = ("results", "opcode", "args", "comment")

    def __init__(self, results: Sequence[str], opcode: str,
                 args: Sequence[Any], comment: str = ""):
        if "." not in opcode:
            raise MALError(f"opcode {opcode!r} must be module.function")
        self.results = list(results)
        self.opcode = opcode
        self.args = list(args)
        self.comment = comment

    @property
    def module(self) -> str:
        return self.opcode.split(".", 1)[0]

    def render(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        call = f"{self.opcode}({args});"
        if not self.results:
            text = call
        elif len(self.results) == 1:
            text = f"{self.results[0]} := {call}"
        else:
            text = f"({', '.join(self.results)}) := {call}"
        if self.comment:
            text += f"  # {self.comment}"
        return text

    def __repr__(self) -> str:
        return self.render()


class MALProgram:
    """A straight-line MAL program with a fresh-variable factory.

    ``kind`` is ``"query"`` for one-shot programs and ``"factory"`` after
    the DataCell rewriter has converted it to a resident continuous plan.
    """

    def __init__(self, name: str = "user.main", kind: str = "query"):
        self.name = name
        self.kind = kind
        self.instructions: List[Instruction] = []
        self._counter = 0
        # bumped on every structural mutation; the fingerprint digest
        # cache and the slot compiler key their memos on it so a stale
        # compilation can never be served for an edited program
        self.version = 0

    def fresh(self, prefix: str = "X") -> Var:
        self._counter += 1
        return Var(f"{prefix}_{self._counter}")

    def emit(self, opcode: str, *args: Any, results: int = 1,
             comment: str = "") -> Any:
        """Append an instruction; returns its result Var(s) (or None)."""
        out = [self.fresh() for _ in range(results)]
        self.instructions.append(
            Instruction([v.name for v in out], opcode, list(args), comment))
        self.version += 1
        if results == 0:
            return None
        if results == 1:
            return out[0]
        return tuple(out)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)
        self.version += 1

    def prepend(self, instruction: Instruction) -> None:
        self.instructions.insert(0, instruction)
        self.version += 1

    def opcodes(self) -> List[str]:
        return [i.opcode for i in self.instructions]

    def count_module(self, module: str) -> int:
        return sum(1 for i in self.instructions if i.module == module)

    def fingerprint(self) -> str:
        """Structural digest of this program (SSA-name independent).

        Two independently compiled programs doing identical work over
        identical sources share a fingerprint; see
        :mod:`repro.mal.fingerprint` for the canonicalization rules.
        """
        from repro.mal.fingerprint import cached_program_fingerprint

        return cached_program_fingerprint(self)

    def copy(self) -> "MALProgram":
        out = MALProgram(self.name, self.kind)
        out.instructions = [Instruction(list(i.results), i.opcode,
                                        list(i.args), i.comment)
                            for i in self.instructions]
        out._counter = self._counter
        return out

    def pretty(self) -> str:
        head = ("function" if self.kind == "query" else "factory")
        lines = [f"{head} {self.name}();"]
        for instr in self.instructions:
            lines.append("    " + instr.render())
        lines.append(f"end {self.name};")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"MALProgram({self.name}, {self.kind}, {len(self)} ops)"
