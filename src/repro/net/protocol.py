"""The DataCell wire protocol: length-prefixed frames of codec-encoded
messages.

Frame layout (everything big-endian)::

    +----------------+-----------+------------------------+
    | length: uint32 | codec: u8 | payload (length bytes) |
    +----------------+-----------+------------------------+

``length`` counts the payload only; ``codec`` selects the payload
encoding (0 = JSON, 1 = msgpack when the optional dependency is
installed). Every frame carries its codec byte, so a connection can
negotiate in the HELLO exchange without a chicken-and-egg problem: the
client sends HELLO in JSON, asks for a codec, and the server answers
with whatever it actually supports.

A message is a flat dict with a ``"type"`` field — one of
:data:`FRAME_TYPES`:

=============  =====================================================
``hello``      client -> server: open a session, propose a codec
``ok``         server -> client: positive reply (hello/ingest/subscribe)
``ingest``     client -> server: one batch of rows for a stream
``subscribe``  client -> server: attach to a standing query's emitter
               (``query`` field) or to a raw stream with optional
               historical replay (``stream`` + ``from`` fields)
``result``     server -> client: one in-order result batch; stream
               subscriptions carry ``offset``/``end`` (the batch's oid
               range) and ``replay`` (true while catching up)
``ack``        client -> server: confirm delivery of a stream
               subscription up to ``offset`` (resume bookkeeping)
``error``      either direction: failure, with a machine-readable code
``stats``      request (client) and reply (server): engine+edge counters
=============  =====================================================

Row values travel as plain lists; NULL is ``null``/``None``. The JSON
codec serializes numpy scalars via ``.item()`` so engine counters and
column values need no special casing.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from typing import Any, Dict, List, Optional

from repro.errors import NetError

try:  # optional accelerator; the container may not ship it
    import msgpack as _msgpack
except ImportError:  # pragma: no cover - depends on environment
    _msgpack = None

PROTOCOL_VERSION = 1
HEADER = struct.Struct("!IB")  # payload length, codec id
# a frame larger than this is a corrupt stream or an abusive peer
MAX_FRAME_BYTES = 64 * 1024 * 1024

HELLO = "hello"
OK = "ok"
INGEST = "ingest"
SUBSCRIBE = "subscribe"
RESULT = "result"
ACK = "ack"
ERROR = "error"
STATS = "stats"
FRAME_TYPES = (HELLO, OK, INGEST, SUBSCRIBE, RESULT, ACK, ERROR, STATS)


def _json_default(value: Any):
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalars
        return item()
    raise TypeError(f"cannot serialize {type(value).__name__} "
                    f"on the wire")


class JSONCodec:
    """Codec 0: always available, human-debuggable."""

    id = 0
    name = "json"

    @staticmethod
    def encode(message: Dict[str, Any]) -> bytes:
        return json.dumps(message, separators=(",", ":"),
                          default=_json_default).encode("utf-8")

    @staticmethod
    def decode(payload: bytes) -> Dict[str, Any]:
        return json.loads(payload.decode("utf-8"))


class MsgpackCodec:
    """Codec 1: compact binary framing (optional dependency)."""

    id = 1
    name = "msgpack"

    @staticmethod
    def encode(message: Dict[str, Any]) -> bytes:
        return _msgpack.packb(message, use_bin_type=True,
                              default=_json_default)

    @staticmethod
    def decode(payload: bytes) -> Dict[str, Any]:
        return _msgpack.unpackb(payload, raw=False)


_CODECS_BY_NAME = {JSONCodec.name: JSONCodec}
_CODECS_BY_ID = {JSONCodec.id: JSONCodec}
if _msgpack is not None:
    _CODECS_BY_NAME[MsgpackCodec.name] = MsgpackCodec
    _CODECS_BY_ID[MsgpackCodec.id] = MsgpackCodec


def available_codecs() -> List[str]:
    """Codec names this process can encode/decode."""
    return sorted(_CODECS_BY_NAME)


def get_codec(name: str):
    """Codec class by name; falls back to JSON for unknown/unavailable
    names (the negotiation contract: the reply states what was used)."""
    return _CODECS_BY_NAME.get(name.lower(), JSONCodec)


def encode_frame(message: Dict[str, Any], codec=JSONCodec) -> bytes:
    """One complete wire frame (header + payload) for *message*."""
    payload = codec.encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise NetError(f"frame of {len(payload)} bytes exceeds the "
                       f"{MAX_FRAME_BYTES}-byte limit", code="too_large")
    return HEADER.pack(len(payload), codec.id) + payload


def decode_frame(header: bytes, payload: bytes) -> Dict[str, Any]:
    """Decode one frame already split into header + payload."""
    _length, codec_id = HEADER.unpack(header)
    codec = _CODECS_BY_ID.get(codec_id)
    if codec is None:
        raise NetError(f"unknown codec id {codec_id} on the wire",
                       code="bad_frame")
    try:
        message = codec.decode(payload)
    except Exception as exc:
        raise NetError(f"undecodable {codec.name} payload: {exc}",
                       code="bad_frame") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise NetError("frame payload is not a typed message",
                       code="bad_frame")
    return message


class FrameStream:
    """Blocking framed messaging over one connected socket.

    ``send`` is serialized by a lock (the server's scheduler-side
    writer threads and the connection's reply path share one socket);
    ``recv`` is single-reader by construction.
    """

    def __init__(self, sock: socket.socket, codec=JSONCodec):
        self.sock = sock
        self.codec = codec
        self._send_lock = threading.Lock()

    def set_codec(self, name: str) -> str:
        """Switch the outgoing codec; returns the name actually used."""
        self.codec = get_codec(name)
        return self.codec.name

    def send(self, message: Dict[str, Any]) -> None:
        frame = encode_frame(message, self.codec)
        try:
            with self._send_lock:
                self.sock.sendall(frame)
        except OSError as exc:
            raise NetError(f"send failed: {exc}", code="io") from exc

    def _recv_exact(self, nbytes: int) -> Optional[bytes]:
        chunks = []
        remaining = nbytes
        while remaining:
            try:
                chunk = self.sock.recv(remaining)
            except socket.timeout:
                raise
            except OSError as exc:
                raise NetError(f"recv failed: {exc}", code="io") from exc
            if not chunk:
                if chunks:
                    raise NetError("connection closed mid-frame",
                                   code="io")
                return None  # clean EOF on a frame boundary
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Optional[Dict[str, Any]]:
        """Next message, or ``None`` on orderly EOF. Raises
        ``socket.timeout`` when the socket has a timeout set."""
        header = self._recv_exact(HEADER.size)
        if header is None:
            return None
        length, _codec_id = HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise NetError(f"peer announced a {length}-byte frame "
                           f"(limit {MAX_FRAME_BYTES})", code="too_large")
        payload = self._recv_exact(length) if length else b""
        if payload is None:
            raise NetError("connection closed mid-frame", code="io")
        return decode_frame(header, payload)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


# -- message constructors (both sides use these) -----------------------


def hello(codec: str = "json", client: str = "repro") -> Dict[str, Any]:
    return {"type": HELLO, "version": PROTOCOL_VERSION,
            "codec": codec, "client": client}


def ok(**fields: Any) -> Dict[str, Any]:
    message: Dict[str, Any] = {"type": OK}
    message.update(fields)
    return message


def ingest(stream: str, rows: List[List[Any]],
           seq: Optional[int] = None) -> Dict[str, Any]:
    message: Dict[str, Any] = {"type": INGEST, "stream": stream,
                               "rows": [list(r) for r in rows]}
    if seq is not None:
        message["seq"] = seq
    return message


def subscribe(query: Optional[str] = None,
              stream: Optional[str] = None,
              from_offset: Optional[int] = None) -> Dict[str, Any]:
    """Query subscription (``query``) or raw-stream subscription
    (``stream``); ``from_offset`` asks the server to replay durable
    history starting at that oid before splicing into live tuples
    (``None`` = live only, from the current head)."""
    if stream is not None:
        message: Dict[str, Any] = {"type": SUBSCRIBE, "stream": stream}
        if from_offset is not None:
            message["from"] = int(from_offset)
        return message
    return {"type": SUBSCRIBE, "query": query}


def result(query: str, seq: int, t: int, columns: List[str],
           rows: List[List[Any]],
           stream: Optional[str] = None,
           offset: Optional[int] = None,
           end: Optional[int] = None,
           replay: bool = False) -> Dict[str, Any]:
    message: Dict[str, Any] = {"type": RESULT, "query": query,
                               "seq": seq, "t": t,
                               "columns": columns, "rows": rows}
    if stream is not None:
        message.update({"stream": stream, "offset": offset,
                        "end": end, "replay": replay})
    return message


def ack(stream: str, offset: int) -> Dict[str, Any]:
    """Fire-and-forget delivery confirmation for a stream
    subscription (no reply frame)."""
    return {"type": ACK, "stream": stream, "offset": int(offset)}


def error(code: str, message: str, **fields: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"type": ERROR, "code": code,
                           "message": message}
    out.update(fields)
    return out


def stats(payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    message: Dict[str, Any] = {"type": STATS}
    if payload is not None:
        message["payload"] = payload
    return message
