"""The network edge: socket receptors, subscription emitters, and a
long-running DataCell server.

The demo architecture puts "receptors and emitters, i.e., a set of
separate processes per stream and per client" at the edges of the
engine. This package is that boundary as real sockets:

* :mod:`repro.net.protocol` — the length-prefixed framed wire protocol
  (JSON or msgpack codecs);
* :mod:`repro.net.server` — :class:`~repro.net.server.DataCellServer`,
  one engine + scheduler thread, a socket receptor per connected
  producer and a queued emitter per subscribed client;
* :mod:`repro.net.client` — :class:`~repro.net.client.DataCellClient`,
  the blocking producer/subscriber client;
* :mod:`repro.net.cli` — the ``repro serve`` / ``send`` / ``tail``
  command-line trio.
"""

from repro.net.client import DataCellClient, ResultBatch
from repro.net.protocol import FrameStream, available_codecs
from repro.net.server import DataCellServer
