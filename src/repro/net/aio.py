"""The shared asyncio I/O core: one event loop for every front end.

PR 3's network edge ran a thread per accepted connection plus a writer
thread per subscriber — ~3 OS threads and their stacks for every
connected client, which caps "thousands of idle subscribers" well
before the engine itself is the bottleneck. :class:`IOLoop` replaces
that with a single asyncio event loop on one daemon thread; every
protocol front end (the framed :class:`~repro.net.server.
DataCellServer` *and* the Postgres wire front end in
:mod:`repro.pg.server`) registers its listen socket on the same loop,
and each connection becomes a coroutine task whose idle cost is a heap
entry, not a thread.

The engine side is untouched: the scheduler still runs on its own
thread, admission queues are still offered from "the network" and
drained by the scheduler, and delivery queues are still filled by the
scheduler — the loop merely replaces *who blocks on the sockets*.
Cross-thread wakeups go through :meth:`IOLoop.call_soon` (a
``call_soon_threadsafe`` wrapper): the scheduler thread delivers a
batch into a subscriber's :class:`~repro.core.emitter.QueueSink`, the
sink's waker sets an ``asyncio.Event`` on the loop, and the
subscriber's writer task wakes — zero polling, so an idle subscriber
costs nothing per unit time.

Sharing: ``repro serve --pg-port`` runs both front ends on one
:class:`IOLoop`. Each server :meth:`acquire`\\ s the loop on start and
:meth:`release`\\ s it on stop; the loop shuts down with its last user
(an externally-constructed loop is never torn down by a server).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Coroutine, Optional

from repro.errors import NetError


class IOLoop:
    """An asyncio event loop running on one daemon thread.

    Thread-contract: :meth:`submit`/:meth:`call`/:meth:`call_soon` are
    safe from any thread; coroutines run on the loop thread. ``stop``
    cancels every outstanding task, lets cancellation handlers unwind,
    then joins the thread.
    """

    def __init__(self, name: str = "datacell-io"):
        self.name = name
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._users = 0
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._loop is not None and self._loop.is_running()

    def start(self) -> "IOLoop":
        with self._lock:
            if self._loop is not None:
                return self
            self._started.clear()
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._run, daemon=True, name=self.name)
            self._thread.start()
        self._started.wait(5.0)
        return self

    def _run(self) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        loop.call_soon(self._started.set)
        try:
            loop.run_forever()
        finally:
            # unwind anything that survived the cancel sweep
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(
                    *pending, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def acquire(self) -> "IOLoop":
        """Register one user (a server) and ensure the loop runs."""
        self.start()
        with self._lock:
            self._users += 1
        return self

    def release(self, timeout_s: float = 5.0) -> None:
        """Drop one user; the last one out stops the loop."""
        with self._lock:
            self._users = max(0, self._users - 1)
            last = self._users == 0
        if last:
            self.stop(timeout_s)

    def stop(self, timeout_s: float = 5.0) -> None:
        with self._lock:
            loop, thread = self._loop, self._thread
            self._loop = None
            self._thread = None
            self._users = 0
        if loop is None:
            return
        try:
            fut = asyncio.run_coroutine_threadsafe(
                _cancel_all_tasks(), loop)
            fut.result(timeout_s)
        except (concurrent.futures.TimeoutError, RuntimeError,
                concurrent.futures.CancelledError):
            pass
        try:
            loop.call_soon_threadsafe(loop.stop)
        except RuntimeError:  # already closed
            pass
        if thread is not None and \
                thread is not threading.current_thread():
            thread.join(timeout_s)

    # -- cross-thread entry points -------------------------------------

    def submit(self, coro: Coroutine) -> "concurrent.futures.Future":
        """Schedule *coro* on the loop; returns a concurrent future."""
        loop = self._loop
        if loop is None:
            coro.close()
            raise NetError("I/O loop is not running", code="io")
        return asyncio.run_coroutine_threadsafe(coro, loop)

    def call(self, coro: Coroutine,
             timeout_s: Optional[float] = 10.0) -> Any:
        """Run *coro* on the loop and wait for its result."""
        return self.submit(coro).result(timeout_s)

    def call_soon(self, fn, *args) -> None:
        """``call_soon_threadsafe``; silently drops when stopped (a
        late waker after teardown must not raise in the scheduler)."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop closed between the check and the call

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"IOLoop({self.name}, {state}, users={self._users})"


async def _cancel_all_tasks() -> None:
    tasks = [t for t in asyncio.all_tasks()
             if t is not asyncio.current_task()]
    for task in tasks:
        task.cancel()
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
