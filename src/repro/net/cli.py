"""The network-edge CLI trio: ``repro serve`` / ``send`` / ``tail``.

``serve`` boots an engine (optionally from a shell script that creates
streams and ``.register``\\ s standing queries) and runs a
:class:`~repro.net.server.DataCellServer` until interrupted::

    repro serve --port 9001 --script init.sql

``send`` is a stream producer: rows read from a file or stdin, one
comma-separated tuple per line (SQL-ish literals, as in the shell's
``.feed``), shipped in batches::

    repro send sensors --port 9001 --batch 64 < rows.txt

``tail`` subscribes to a standing query — or, with ``--stream``/
``--from``, to a raw stream with historical replay — and prints result
batches as they arrive::

    repro tail hot_rooms --port 9001 --count 10
    repro tail sensors --stream --from start --reconnect

``--from N`` replays durable history from offset N (``start`` = 0)
before live tuples; ``--reconnect`` retries a lost connection with
exponential backoff, resuming from the last delivered offset.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO, List, Optional

from repro.errors import DataCellError, NetError
from repro.net.client import DataCellClient
from repro.net.server import DataCellServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a DataCell server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9001,
                       help="0 binds an ephemeral port")
    serve.add_argument("--script", default=None,
                       help="shell script (SQL + dot-commands) run "
                            "against the engine before serving")
    serve.add_argument("--admission", choices=("block", "shed"),
                       default="block",
                       help="producer backpressure policy")
    serve.add_argument("--pending", type=int, default=64,
                       help="admission queue bound (batches/producer)")
    serve.add_argument("--client-queue", type=int, default=256,
                       help="delivery queue bound (batches/subscriber)")
    serve.add_argument("--step-ms", type=float, default=2.0,
                       help="scheduler step interval")
    serve.add_argument("--collect-max", type=int, default=1024,
                       help="per-query CollectingSink ring bound "
                            "(0 = unbounded)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve for N seconds, then exit "
                            "(default: until interrupted)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port here (scripting aid)")
    serve.add_argument("--pg-port", type=int, default=None,
                       help="also listen for PostgreSQL clients on "
                            "this port (0 binds an ephemeral port; "
                            "5433 is the conventional choice) — psql, "
                            "pg8000 and friends can then connect")
    serve.add_argument("--pg-host", default=None,
                       help="bind address for the Postgres listener "
                            "(default: --host)")
    serve.add_argument("--pg-port-file", default=None,
                       help="write the bound Postgres port here")
    serve.add_argument("--data-dir", default=None,
                       help="durable stream-log directory; reopening "
                            "an existing one recovers streams, "
                            "queries and cursors")
    serve.add_argument("--durability", default="async",
                       choices=("off", "async", "fsync"),
                       help="log write discipline (with --data-dir)")
    serve.add_argument("--segment-rows", type=int, default=4096,
                       help="rows per log segment file")
    serve.add_argument("--checkpoint-interval", type=float, default=2.0,
                       help="seconds between periodic checkpoints")
    serve.add_argument("--retain-ms", type=int, default=None,
                       help="drop sealed log segments whose newest "
                            "tuple is older than this many ms "
                            "(retention by age)")
    serve.add_argument("--retain-bytes", type=int, default=None,
                       help="drop oldest sealed log segments once a "
                            "stream's log exceeds this many bytes "
                            "(retention by size)")

    send = sub.add_parser("send", help="ingest rows into a stream")
    send.add_argument("stream")
    send.add_argument("--host", default="127.0.0.1")
    send.add_argument("--port", type=int, default=9001)
    send.add_argument("--file", default=None,
                      help="rows file (default: stdin), one "
                           "comma-separated tuple per line")
    send.add_argument("--batch", type=int, default=64,
                      help="rows per INGEST frame")
    send.add_argument("--codec", default="json",
                      choices=("json", "msgpack"))

    tail = sub.add_parser("tail", help="follow a standing query or "
                                       "a raw stream")
    tail.add_argument("query", help="query name (or stream name with "
                                    "--stream / --from)")
    tail.add_argument("--host", default="127.0.0.1")
    tail.add_argument("--port", type=int, default=9001)
    tail.add_argument("--count", type=int, default=None,
                      help="stop after N batches (default: forever)")
    tail.add_argument("--timeout", type=float, default=None,
                      help="stop after N idle seconds")
    tail.add_argument("--codec", default="json",
                      choices=("json", "msgpack"))
    tail.add_argument("--stream", action="store_true",
                      help="subscribe to a raw stream instead of a "
                           "standing query")
    tail.add_argument("--from", dest="from_offset", default=None,
                      help="replay the stream's durable history from "
                           "this offset ('start' = 0); implies "
                           "--stream")
    tail.add_argument("--reconnect", action="store_true",
                      help="retry lost connections with exponential "
                           "backoff, resuming from the last "
                           "delivered offset")
    tail.add_argument("--max-retries", type=int, default=8,
                      help="reconnect attempts before giving up")
    return parser


def _cmd_serve(args, out: IO) -> int:
    from repro.cli import DataCellShell
    from repro.core.clock import WallClock
    from repro.core.engine import DataCellEngine

    engine = DataCellEngine(clock=WallClock(),
                            data_dir=args.data_dir,
                            durability=args.durability,
                            segment_rows=args.segment_rows,
                            checkpoint_interval_s=args.checkpoint_interval,
                            retain_ms=args.retain_ms,
                            retain_bytes=args.retain_bytes)
    if engine.recovered:
        recovered = engine.log_stats()
        out.write(f"recovered {len(recovered['streams'])} stream "
                  f"log(s) and {len(engine.queries())} standing "
                  f"quer(ies) from {args.data_dir}\n")
    if args.script:
        shell = DataCellShell(engine=engine, out=out)
        with open(args.script) as f:
            shell.run(f, interactive=False)
    # both front ends share one asyncio I/O core; the framed server
    # drives the scheduler thread, so the pg listener must not
    io = None
    pg_server = None
    if args.pg_port is not None:
        from repro.net.aio import IOLoop
        from repro.pg.server import PGWireServer

        io = IOLoop()
        pg_server = PGWireServer(
            engine, host=args.pg_host or args.host, port=args.pg_port,
            max_client_queue=args.client_queue,
            drive_scheduler=False, io_loop=io)
    server = DataCellServer(
        engine, host=args.host, port=args.port,
        step_interval_s=args.step_ms / 1000.0,
        admission=args.admission,
        max_pending_batches=args.pending,
        max_client_queue=args.client_queue,
        collect_max_batches=args.collect_max or None,
        io_loop=io)
    server.start()
    out.write(f"datacell server listening on "
              f"{server.host}:{server.port} "
              f"(admission={server.admission}, "
              f"{len(engine.queries())} standing queries)\n")
    if pg_server is not None:
        pg_server.start()
        out.write(f"postgres front end listening on "
                  f"{pg_server.host}:{pg_server.port} "
                  f"(psql -h {pg_server.host} -p {pg_server.port})\n")
    out.flush()
    if args.port_file:
        with open(args.port_file, "w") as f:
            f.write(str(server.port))
    if args.pg_port_file and pg_server is not None:
        with open(args.pg_port_file, "w") as f:
            f.write(str(pg_server.port))
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        if pg_server is not None:
            pg_server.stop()
        server.stop()
        engine.close()
    stats = server.net_stats()["totals"]
    out.write(f"served {server.connections_total} connections: "
              f"ingested={stats['ingested']} shed={stats['shed']} "
              f"delivered={stats['delivered_rows']} rows\n")
    if pg_server is not None:
        pstats = pg_server.pg_stats()
        out.write(f"postgres front end served "
                  f"{pstats['connections_total']} connections: "
                  f"queries={pstats['queries']} "
                  f"rows={pstats['rows_sent']} "
                  f"tails={pstats['tails']}\n")
    return 0


def _read_rows(source: IO, parse) -> List[List]:
    rows = []
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append(parse(line))
    return rows


def _cmd_send(args, out: IO) -> int:
    from repro.cli import parse_row_values

    if args.file:
        with open(args.file) as f:
            rows = _read_rows(f, parse_row_values)
    else:
        rows = _read_rows(sys.stdin, parse_row_values)
    accepted = shed = 0
    start = time.perf_counter()
    with DataCellClient(args.host, port=args.port,
                        codec=args.codec,
                        client_name="repro-send") as client:
        for i in range(0, len(rows), max(args.batch, 1)):
            batch = rows[i:i + args.batch]
            try:
                accepted += client.ingest(args.stream, batch, seq=i)
            except NetError as exc:
                if exc.code != "shed":
                    raise
                shed += len(batch)
    elapsed = time.perf_counter() - start
    rate = accepted / elapsed if elapsed > 0 else 0.0
    out.write(f"sent {accepted} rows to {args.stream!r} "
              f"({shed} shed) in {elapsed:.3f}s "
              f"[{rate:,.0f} rows/s]\n")
    return 0 if shed == 0 else 3


def _backoff_s(attempt: int) -> float:
    """Exponential reconnect backoff: 0.2s, 0.4s, ... capped at 5s."""
    return min(0.2 * (2 ** attempt), 5.0)


def _parse_from(value) -> Optional[int]:
    if value is None:
        return None
    if str(value).lower() == "start":
        return 0
    return int(value)


def _print_batch(batch, out: IO) -> None:
    if batch.stream is not None:
        span = f" [{batch.offset},{batch.end})" \
            + (" replay" if batch.replay else "")
    else:
        span = ""
    out.write(f"-- t={batch.t}ms seq={batch.seq} "
              f"({batch.row_count} rows){span}\n")
    for row in batch.rows:
        out.write("  " + ", ".join(
            "NULL" if v is None else str(v) for v in row) + "\n")


def _cmd_tail(args, out: IO, connect_factory=None) -> int:
    """``connect_factory`` (tests) overrides client construction so
    reconnect behavior is drivable without real socket failures."""
    connect = connect_factory or (lambda: DataCellClient(
        args.host, port=args.port, codec=args.codec,
        client_name="repro-tail"))
    is_stream = bool(args.stream or args.from_offset is not None)
    resume = _parse_from(args.from_offset)
    seen = 0
    attempt = 0
    try:
        while args.count is None or seen < args.count:
            try:
                client = connect()
            except NetError as exc:
                if not args.reconnect or attempt >= args.max_retries:
                    raise
                attempt += 1
                out.write(f"connect failed ({exc}); retry "
                          f"{attempt}/{args.max_retries} in "
                          f"{_backoff_s(attempt - 1):.1f}s\n")
                out.flush()
                time.sleep(_backoff_s(attempt - 1))
                continue
            try:
                if is_stream:
                    columns = client.subscribe_stream(
                        args.query, from_offset=resume)
                    out.write(f"subscribed to stream {args.query!r} "
                              f"({', '.join(columns)}) from offset "
                              f"{client.stream_offsets[args.query.lower()]}\n")
                else:
                    columns = client.subscribe(args.query)
                    out.write(f"subscribed to {args.query!r} "
                              f"({', '.join(columns)})\n")
                out.flush()
                attempt = 0
                idle_deadline = (time.monotonic() + args.timeout
                                 if args.timeout is not None else None)
                while args.count is None or seen < args.count:
                    batches = client.results(max_batches=1,
                                             timeout=0.5)
                    if not batches:
                        if client.closed \
                                or client.last_error is not None:
                            break
                        if idle_deadline is not None \
                                and time.monotonic() > idle_deadline:
                            return 0
                        continue
                    if args.timeout is not None:
                        idle_deadline = time.monotonic() + args.timeout
                    for batch in batches:
                        seen += 1
                        _print_batch(batch, out)
                        if batch.stream is not None \
                                and batch.end is not None:
                            # next reconnect resumes after the last
                            # delivered tuple — no gap, no duplicate
                            resume = int(batch.end)
                    out.flush()
                if client.last_error is not None:
                    out.write(f"server: {client.last_error} "
                              f"[{client.last_error.code}]\n")
            except NetError as exc:
                client.close()
                if not (args.reconnect and is_stream):
                    raise
                out.write(f"connection lost ({exc})\n")
                continue
            client.close()
            if args.count is not None and seen < args.count \
                    and args.reconnect and is_stream:
                # server went away mid-tail; back off and resume
                if attempt >= args.max_retries:
                    break
                attempt += 1
                time.sleep(_backoff_s(attempt - 1))
                continue
            break
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return 0


def main(argv: Optional[List[str]] = None,
         out: Optional[IO] = None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "send":
            return _cmd_send(args, out)
        return _cmd_tail(args, out)
    except (DataCellError, OSError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
