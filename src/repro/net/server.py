"""A long-running DataCell server: the engine behind a socket.

The demo architecture runs "a set of separate processes per stream and
per client" at the engine's edges. :class:`DataCellServer` realizes
that boundary: one engine on a wall clock, a scheduler thread stepping
the Petri net (LiveRunner-style), one
:class:`~repro.core.receptor.SocketReceptor` per connected stream
producer, and one :class:`~repro.core.emitter.QueueSink` + writer task
per subscribed client.

I/O runs on the shared asyncio core (:class:`~repro.net.aio.IOLoop`):
one event loop thread accepts connections and runs a coroutine per
connection plus a writer/pump task per subscription, so an idle
subscriber costs a heap entry instead of the former thread (PR 3's
thread-per-connection model). The engine side is unchanged — the
scheduler thread still pumps admission queues and fills delivery
queues; queues are woken across the thread boundary via
``call_soon_threadsafe`` wakers, never polled.

Backpressure is explicit at both edges:

* **ingress** — each producer's receptor has a bounded admission queue;
  when baskets back up the producer either blocks (``admission=
  "block"``, backpressure rides the TCP connection) or gets a shed
  ERROR frame (``admission="shed"``), with shed/blocked counts in
  :meth:`net_stats` and the shell's ``.net`` pane;
* **egress** — each subscriber has a bounded delivery queue drained in
  order by its writer task; a slow consumer is *evicted* (ERROR
  frame, subscription torn down) rather than allowed to buffer the
  engine into the ground.

Typical use::

    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    engine.register_continuous("SELECT k, v FROM s WHERE v > 0.5",
                               name="q")
    with DataCellServer(engine) as server:
        ...  # clients connect to server.host:server.port
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.clock import WallClock
from repro.core.emitter import QueueSink, SubscriberCursor
from repro.core.engine import DataCellEngine
from repro.core.live import drain_scheduler
from repro.core.receptor import SocketReceptor
from repro.errors import CatalogError, DataCellError, NetError, \
    StreamError
from repro.net import protocol
from repro.net.aio import IOLoop

_TOTAL_KEYS = ("offered", "ingested", "shed", "blocked",
               "delivered_batches", "delivered_rows", "evicted")


class _Subscription:
    """One subscribed client: a queued sink plus its writer task.

    The sink is filled by the scheduler thread; its waker sets an
    ``asyncio.Event`` on the I/O loop, and the writer task drains the
    queue into RESULT frames. Idle = parked on the event, zero cost.
    """

    def __init__(self, conn: "_Connection", query_name: str,
                 sink: QueueSink, emitter, io: IOLoop):
        self.conn = conn
        self.query = query_name
        self.sink = sink
        self.emitter = emitter
        self.sent_batches = 0
        self.sent_rows = 0
        self.dead = False
        self._io = io
        self._stopping = False
        self._event = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        sink.set_waker(lambda: io.call_soon(self._event.set))

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run())

    async def _run(self) -> None:
        try:
            while True:
                self._event.clear()
                while True:
                    item = self.sink.get_nowait()
                    if item is None:
                        break
                    seq, now, rel = item
                    frame = protocol.result(
                        self.query, seq, now, rel.names,
                        [list(r) for r in rel.to_rows()])
                    try:
                        await self.conn.send(frame)
                    except NetError:
                        self._detach()
                        return
                    self.sent_batches += 1
                    self.sent_rows += rel.row_count
                if self.sink.evicted and self.sink.drained():
                    await self._evict()
                    return
                if self._stopping:
                    return
                await self._event.wait()
        except asyncio.CancelledError:
            self._detach()
            raise

    async def _evict(self) -> None:
        try:
            await self.conn.send(protocol.error(
                "evicted",
                f"subscriber too slow for query {self.query!r}; "
                f"delivery queue overflowed", query=self.query))
        except NetError:
            pass
        self._detach()

    def _detach(self) -> None:
        self.dead = True
        self.sink.set_waker(None)
        self.emitter.remove_sink(self.sink)

    async def shutdown(self) -> None:
        """Join the writer task (loop thread): stop, wake, await."""
        self._stopping = True
        self._detach()
        task = self._task
        if task is not None and task is not asyncio.current_task():
            self._event.set()
            done, _pending = await asyncio.wait({task}, timeout=2.0)
            if not done:
                task.cancel()
                await asyncio.wait({task}, timeout=1.0)
        self._task = None

    def stats(self) -> Dict[str, Any]:
        out = self.sink.stats()
        out.update({"query": self.query,
                    "sent_batches": self.sent_batches,
                    "sent_rows": self.sent_rows,
                    "dead": self.dead})
        return out


class _StreamSubscription:
    """One replay-capable raw-stream subscriber: a cursor pump task.

    Where :class:`_Subscription` buffers emitter deliveries in a
    bounded queue (and evicts slow consumers), a stream subscriber
    owns a :class:`~repro.core.emitter.SubscriberCursor` into the
    stream's oid/offset space. Its pump task reads
    ``[cursor, head)`` through
    :meth:`~repro.core.engine.DataCellEngine.read_stream_range` — the
    durable log below the basket's retained prefix, live basket memory
    above — so historical replay flows through the same delivery path
    as live tuples and splices into them without a gap or duplicate.
    A slow consumer simply lags and later resumes; it is never
    evicted. A basket tap wakes the pump on every append (via the I/O
    loop's threadsafe trampoline — the tap itself runs under the
    basket lock on the scheduler thread and must stay tiny).

    Retention contract: a ``from`` offset below the log's retention
    floor is not an error — the read path skips the discarded prefix,
    the first delivered batch starts at the floor, and the rows passed
    over are counted in ``skipped_rows`` (the ``.net`` pane). The
    connection stays up; only genuinely dropped streams detach it.
    """

    def __init__(self, conn: "_Connection", engine: DataCellEngine,
                 stream: str, start_offset: int, io: IOLoop,
                 chunk_rows: int = 2048):
        self.conn = conn
        self.engine = engine
        self.stream = stream
        self.basket = engine.basket(stream)
        self.cursor = SubscriberCursor(
            f"c{conn.cid}:{stream}", start_offset)
        self.chunk_rows = max(int(chunk_rows), 1)
        # tuples below this existed before we subscribed: replay
        self.replay_upto = self.basket.next_oid
        # rows requested but already discarded by retention: the
        # subscriber lagged to the floor instead of erroring out
        self.skipped_rows = 0
        self.dead = False
        self._io = io
        self._seq = 0
        self._stopping = False
        self._behind = False
        self._event = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        # captured once: each `self._tap` access builds a fresh bound
        # method, and the basket removes taps by identity
        self._tap_cb = self._tap

    def start(self) -> None:
        self.basket.add_tap(self._tap_cb)
        self._task = asyncio.get_running_loop().create_task(
            self._run())

    def _tap(self, lo: int, hi: int, now: int) -> None:
        # called under the basket lock on every append: tiny, lock-free
        self._io.call_soon(self._event.set)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while not self._stopping:
                head = self.basket.next_oid
                if self.cursor.cursor >= head:
                    self._event.clear()
                    if self.basket.next_oid > self.cursor.cursor:
                        continue  # append raced the clear
                    await self._event.wait()
                    continue
                if self.cursor.lag(head) > self.chunk_rows:
                    self._behind = True
                lo = self.cursor.cursor
                hi = min(head, lo + self.chunk_rows)
                try:
                    # log reads can touch disk; keep the loop live
                    parts = await loop.run_in_executor(
                        None, self.engine.read_stream_range,
                        self.stream, lo, hi)
                except DataCellError:
                    self._detach()  # stream dropped under us
                    return
                if parts and parts[0][0] > lo:
                    self.skipped_rows += parts[0][0] - lo
                for plo, phi, rel in parts:
                    frame = protocol.result(
                        "", self._seq, self.engine.now(), rel.names,
                        [list(r) for r in rel.to_rows()],
                        stream=self.stream, offset=plo, end=phi,
                        replay=phi <= self.replay_upto)
                    # advance BEFORE send: the client may ack the batch
                    # before this task runs again, and a cursor behind
                    # the delivery would clamp that ack away
                    self._seq += 1
                    self.cursor.advance(phi, phi - plo,
                                        phi <= self.replay_upto)
                    try:
                        await self.conn.send(frame)
                    except NetError:
                        self._detach()
                        return
                if not parts:
                    # everything in [lo, hi) predates what the log
                    # retains; skip forward rather than spin
                    self.skipped_rows += hi - lo
                    self.cursor.advance(hi, 0, True)
                if self._behind and self.cursor.cursor >= \
                        self.basket.next_oid:
                    self._behind = False
                    self.cursor.resumes += 1
        except asyncio.CancelledError:
            self._detach()
            raise
        finally:
            self._detach()

    def ack(self, offset: int) -> None:
        self.cursor.ack(offset)

    def _detach(self) -> None:
        self.dead = True
        self.basket.remove_tap(self._tap_cb)

    async def shutdown(self) -> None:
        """Join the pump task (loop thread): stop, wake, await."""
        self._stopping = True
        self._detach()
        task = self._task
        if task is not None and task is not asyncio.current_task():
            self._event.set()
            done, _pending = await asyncio.wait({task}, timeout=2.0)
            if not done:
                task.cancel()
                await asyncio.wait({task}, timeout=1.0)
        self._task = None

    def stats(self) -> Dict[str, Any]:
        out = self.cursor.stats()
        out.update({"stream": self.stream,
                    "lag": self.cursor.lag(self.basket.next_oid),
                    "skipped_rows": self.skipped_rows,
                    "dead": self.dead})
        return out


class _Connection:
    """Server-side state of one accepted socket (loop-thread owned)."""

    def __init__(self, cid: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.cid = cid
        self.reader = reader
        self.writer = writer
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) \
            else str(peer)
        self.codec = protocol.JSONCodec
        self.receptors: Dict[str, SocketReceptor] = {}
        self.subscriptions: List[_Subscription] = []
        self.stream_subs: Dict[str, _StreamSubscription] = {}
        self.closed = False
        # one frame at a time per socket: replies and subscription
        # deliveries interleave at frame granularity, and drain() may
        # not be awaited concurrently from two tasks
        self._send_lock = asyncio.Lock()

    async def send(self, message: Dict[str, Any]) -> None:
        frame = protocol.encode_frame(message, self.codec)
        try:
            async with self._send_lock:
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, OSError, RuntimeError) as exc:
            raise NetError(f"send failed: {exc}", code="io") from exc

    async def recv(self) -> Optional[Dict[str, Any]]:
        """Next framed message, ``None`` on orderly EOF."""
        try:
            header = await self.reader.readexactly(
                protocol.HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise NetError("connection closed mid-frame",
                               code="io") from exc
            return None
        except (ConnectionError, OSError) as exc:
            raise NetError(f"recv failed: {exc}", code="io") from exc
        length, _codec_id = protocol.HEADER.unpack(header)
        if length > protocol.MAX_FRAME_BYTES:
            raise NetError(
                f"peer announced a {length}-byte frame "
                f"(limit {protocol.MAX_FRAME_BYTES})", code="too_large")
        try:
            payload = await self.reader.readexactly(length) \
                if length else b""
        except (asyncio.IncompleteReadError, ConnectionError,
                OSError) as exc:
            raise NetError("connection closed mid-frame",
                           code="io") from exc
        return protocol.decode_frame(header, payload)


class DataCellServer:
    """Hosts one engine plus a scheduler thread behind a listen socket."""

    def __init__(self, engine: Optional[DataCellEngine] = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 step_interval_s: float = 0.002,
                 admission: str = "block",
                 max_pending_batches: int = 64,
                 block_timeout_s: float = 5.0,
                 max_client_queue: int = 256,
                 collect_max_batches: Optional[int] = 1024,
                 replay_chunk_rows: int = 2048,
                 io_loop: Optional[IOLoop] = None):
        """``port=0`` binds an ephemeral port (read :attr:`port` after
        :meth:`start`). ``admission``/``max_pending_batches`` shape the
        per-producer admission queues; ``max_client_queue`` bounds each
        subscriber's delivery queue; ``collect_max_batches`` retro-bounds
        every standing query's built-in CollectingSink so a long-running
        server does not hoard history (``None`` leaves them unbounded).
        ``replay_chunk_rows`` bounds how many tuples one stream-replay
        RESULT frame carries while a subscriber catches up. ``io_loop``
        shares an existing :class:`~repro.net.aio.IOLoop` (e.g. with the
        Postgres front end); by default the server runs its own.
        """
        if engine is None:
            engine = DataCellEngine(clock=WallClock())
        if not isinstance(engine.clock, WallClock):
            raise StreamError("DataCellServer needs an engine on a "
                              "WallClock")
        if admission not in SocketReceptor.POLICIES:
            raise StreamError(f"unknown admission policy {admission!r}")
        self.engine = engine
        self.host = host
        self.port = port
        self.step_interval_s = step_interval_s
        self.admission = admission
        self.max_pending_batches = max_pending_batches
        self.block_timeout_s = block_timeout_s
        self.max_client_queue = max_client_queue
        self.collect_max_batches = collect_max_batches
        self.replay_chunk_rows = replay_chunk_rows
        self.io = io_loop if io_loop is not None else IOLoop()
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._sched_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._conns: List[_Connection] = []
        self._orphan_receptors: List[SocketReceptor] = []
        self._conn_counter = 0
        self.connections_total = 0
        self.steps = 0
        self.running = False
        self._totals: Dict[str, int] = {k: 0 for k in _TOTAL_KEYS}

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "DataCellServer":
        if self.running:
            raise StreamError("server already started")
        if self.collect_max_batches is not None:
            for query in self.engine.queries():
                query.sink.set_max_batches(self.collect_max_batches)
        self.io.acquire()
        try:
            self._aio_server = self.io.call(self._open_listener())
        except Exception:
            self.io.release()
            raise
        sockname = self._aio_server.sockets[0].getsockname()
        self.host, self.port = sockname[:2]
        self.engine.net_edge = self
        self._stop.clear()
        self.running = True
        self._sched_thread = threading.Thread(
            target=self._sched_loop, daemon=True,
            name="datacell-server-scheduler")
        self._sched_thread.start()
        return self

    async def _open_listener(self) -> asyncio.AbstractServer:
        return await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port,
            backlog=512, reuse_address=True)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Orderly shutdown: stop accepting, drain ingested tuples
        through the net, flush subscriber queues, then close
        connections (idempotent)."""
        if not self.running:
            return
        self.running = False
        # 1. no new connections
        if self._aio_server is not None:
            server = self._aio_server
            self._aio_server = None
            try:
                self.io.call(_close_listener(server), timeout_s)
            except Exception:
                pass
        deadline = time.monotonic() + timeout_s
        # 2. let the scheduler thread drain admission queues + the net
        while time.monotonic() < deadline:
            if self._quiesced():
                break
            time.sleep(0.01)
        # 3. stop the scheduler thread; one final bounded drain
        self._stop.set()
        if self._sched_thread is not None:
            self._sched_thread.join(timeout_s)
            self._sched_thread = None
        drain_scheduler(self.engine.scheduler)
        # 4. flush subscriber delivery queues (writer tasks running)
        while time.monotonic() < deadline:
            if all(sub.sink.drained() or sub.dead
                   for conn in self._snapshot_conns()
                   for sub in conn.subscriptions):
                break
            time.sleep(0.01)
        # 5. tear down connections (joins writer/pump tasks)
        for conn in self._snapshot_conns():
            try:
                self.io.call(self._close_conn(conn), timeout_s)
            except Exception:
                pass
        self._reap_receptors(force=True)
        self.io.release(timeout_s)

    def _quiesced(self) -> bool:
        backlog = any(r.pending_batches()
                      for r in self._all_socket_receptors())
        return not backlog \
            and not self.engine.scheduler.enabled_transitions()

    def __enter__(self) -> "DataCellServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- scheduler thread ----------------------------------------------

    def _sched_loop(self) -> None:
        while not self._stop.is_set():
            self.engine.scheduler.step()
            self.engine.maybe_checkpoint()
            self.steps += 1
            if self.steps % 256 == 0:
                self._reap_receptors()
            time.sleep(self.step_interval_s)

    def _reap_receptors(self, force: bool = False) -> None:
        """Unregister closed-and-drained socket receptors of departed
        connections, folding their counters into the totals."""
        with self._lock:
            keep = []
            for receptor in self._orphan_receptors:
                if force or receptor.exhausted:
                    self._fold_receptor(receptor)
                    self.engine.remove_receptor(receptor)
                else:
                    keep.append(receptor)
            self._orphan_receptors = keep

    def _fold_receptor(self, receptor: SocketReceptor) -> None:
        self._totals["offered"] += receptor.total_offered
        self._totals["ingested"] += receptor.total_ingested
        self._totals["shed"] += receptor.total_shed
        self._totals["blocked"] += receptor.total_blocked

    # -- connection handling (all coroutines run on the I/O loop) ------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        if not self.running:
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                import socket as _socket
                sock.setsockopt(_socket.IPPROTO_TCP,
                                _socket.TCP_NODELAY, 1)
            except OSError:
                pass
        with self._lock:
            self._conn_counter += 1
            conn = _Connection(self._conn_counter, reader, writer)
            self._conns.append(conn)
            self.connections_total += 1
        try:
            if await self._handshake(conn):
                while True:
                    message = await conn.recv()
                    if message is None:
                        break
                    await self._dispatch(conn, message)
        except NetError:
            pass  # peer vanished or spoke garbage; drop the connection
        finally:
            await self._close_conn(conn)

    async def _handshake(self, conn: _Connection) -> bool:
        first = await conn.recv()
        if first is None:
            return False
        if first.get("type") != protocol.HELLO:
            await conn.send(protocol.error(
                "bad_frame", "expected a HELLO frame first"))
            return False
        conn.codec = protocol.get_codec(
            str(first.get("codec", "json")))
        await conn.send(protocol.ok(
            server="datacell-repro",
            version=protocol.PROTOCOL_VERSION, codec=conn.codec.name,
            streams=[s.name for s in self.engine.catalog.streams()],
            queries=[q.name for q in self.engine.queries()]))
        return True

    async def _dispatch(self, conn: _Connection,
                        message: Dict[str, Any]) -> None:
        kind = message.get("type")
        if kind == protocol.INGEST:
            await self._on_ingest(conn, message)
        elif kind == protocol.SUBSCRIBE:
            if message.get("stream"):
                await self._on_subscribe_stream(conn, message)
            else:
                await self._on_subscribe(conn, message)
        elif kind == protocol.ACK:
            self._on_ack(conn, message)
        elif kind == protocol.STATS:
            await conn.send(
                protocol.stats(self.engine.network_stats()))
        elif kind == protocol.ERROR:
            pass  # client-side complaint; nothing to do server-side
        else:
            await conn.send(protocol.error(
                "bad_frame", f"unexpected frame type {kind!r}"))

    async def _on_ingest(self, conn: _Connection,
                         message: Dict[str, Any]) -> None:
        stream_name = str(message.get("stream", "")).lower()
        rows = message.get("rows") or []
        seq = message.get("seq")
        receptor = conn.receptors.get(stream_name)
        if receptor is None:
            try:
                receptor = self.engine.add_socket_receptor(
                    stream_name,
                    name=f"c{conn.cid}_{stream_name}",
                    max_pending=self.max_pending_batches,
                    policy=self.admission,
                    block_timeout_s=self.block_timeout_s)
            except (CatalogError, StreamError) as exc:
                await conn.send(protocol.error(
                    "no_stream", str(exc), stream=stream_name, seq=seq))
                return
            conn.receptors[stream_name] = receptor
        try:
            if self._offer_may_block(receptor):
                # a blocking admission (queue full / log writer
                # drowning, policy="block") must not stall the event
                # loop — push it to a worker thread; backpressure
                # still rides this connection because its coroutine
                # awaits the result before reading the next frame
                accepted = await asyncio.get_running_loop() \
                    .run_in_executor(None, receptor.offer, rows)
            else:
                accepted = receptor.offer(rows)
        except StreamError as exc:
            await conn.send(protocol.error(
                "overload", str(exc), stream=stream_name, seq=seq))
            return
        if accepted == 0 and rows:
            await conn.send(protocol.error(
                "shed", f"admission queue for {stream_name!r} is full "
                f"({receptor.max_pending} batches); batch shed",
                stream=stream_name, seq=seq, rows=len(rows)))
            return
        await conn.send(protocol.ok(accepted=accepted, seq=seq,
                                    stream=stream_name))

    @staticmethod
    def _offer_may_block(receptor: SocketReceptor) -> bool:
        if receptor.policy != "block":
            return False  # shed admission never blocks
        if receptor.pending_batches() >= receptor.max_pending:
            return True
        log = receptor.basket.log
        return log is not None and \
            log.backlog_batches() >= receptor.log_backlog_limit

    async def _on_subscribe(self, conn: _Connection,
                            message: Dict[str, Any]) -> None:
        query_name = str(message.get("query", "")).lower()
        try:
            query = self.engine.continuous_query(query_name)
        except DataCellError as exc:
            await conn.send(protocol.error(
                "no_query", str(exc), query=query_name))
            return
        if any(s.query == query_name and not s.dead
               for s in conn.subscriptions):
            await conn.send(protocol.error(
                "duplicate", f"already subscribed to {query_name!r}",
                query=query_name))
            return
        sink = QueueSink(f"c{conn.cid}:{query_name}",
                         max_batches=self.max_client_queue)
        subscription = _Subscription(conn, query_name, sink,
                                     query.emitter, self.io)
        conn.subscriptions.append(subscription)
        query.emitter.add_sink(sink)
        await conn.send(protocol.ok(query=query_name,
                                    columns=query.plan.schema.names))
        subscription.start()

    async def _on_subscribe_stream(self, conn: _Connection,
                                   message: Dict[str, Any]) -> None:
        stream_name = str(message.get("stream", "")).lower()
        try:
            basket = self.engine.basket(stream_name)
        except DataCellError as exc:
            await conn.send(protocol.error(
                "no_stream", str(exc), stream=stream_name))
            return
        existing = conn.stream_subs.get(stream_name)
        if existing is not None and not existing.dead:
            await conn.send(protocol.error(
                "duplicate",
                f"already subscribed to stream {stream_name!r}",
                stream=stream_name))
            return
        head = basket.next_oid
        raw_from = message.get("from")
        start = head if raw_from is None \
            else max(0, min(int(raw_from), head))
        sub = _StreamSubscription(conn, self.engine, stream_name,
                                  start, self.io,
                                  chunk_rows=self.replay_chunk_rows)
        conn.stream_subs[stream_name] = sub
        await conn.send(protocol.ok(
            stream=stream_name, columns=basket.schema.names,
            offset=start, head=head))
        sub.start()

    def _on_ack(self, conn: _Connection,
                message: Dict[str, Any]) -> None:
        # fire-and-forget: no reply frame, bad acks are dropped
        sub = conn.stream_subs.get(
            str(message.get("stream", "")).lower())
        if sub is not None:
            try:
                sub.ack(int(message.get("offset", 0)))
            except (TypeError, ValueError):
                pass

    async def _close_conn(self, conn: _Connection) -> None:
        """Tear one connection down on the loop: join its writer and
        pump tasks, fold every counter, release taps/sinks/receptors.
        Runs on *every* departure path — orderly stop, client EOF, or
        a mid-replay drop — so nothing leaks (idempotent)."""
        with self._lock:
            if conn.closed:
                return
            conn.closed = True
            self._conns = [c for c in self._conns if c is not conn]
            for receptor in conn.receptors.values():
                receptor.close()
                self._orphan_receptors.append(receptor)
        for subscription in conn.subscriptions:
            await subscription.shutdown()
            self._totals["delivered_batches"] += \
                subscription.sent_batches
            self._totals["delivered_rows"] += subscription.sent_rows
            if subscription.sink.evicted:
                self._totals["evicted"] += 1
        for stream_sub in conn.stream_subs.values():
            await stream_sub.shutdown()
            self._totals["delivered_batches"] += \
                stream_sub.cursor.sent_batches
            self._totals["delivered_rows"] += \
                stream_sub.cursor.sent_rows
        try:
            conn.writer.close()
        except Exception:
            pass

    # -- inspection ----------------------------------------------------

    def _snapshot_conns(self) -> List[_Connection]:
        with self._lock:
            return list(self._conns)

    def _all_socket_receptors(self) -> List[SocketReceptor]:
        with self._lock:
            out = list(self._orphan_receptors)
            for conn in self._conns:
                out.extend(conn.receptors.values())
            return out

    def net_stats(self) -> Dict[str, Any]:
        """Per-connection and aggregate edge counters (the ``"net"``
        section of :meth:`DataCellEngine.network_stats`)."""
        conns = self._snapshot_conns()
        entries = []
        totals = dict(self._totals)
        for conn in conns:
            receptors = {s: r.stats()
                         for s, r in conn.receptors.items()}
            subs = [s.stats() for s in conn.subscriptions]
            stream_subs = [s.stats()
                           for s in conn.stream_subs.values()]
            entries.append({"id": conn.cid, "peer": conn.peer,
                            "receptors": receptors,
                            "subscriptions": subs,
                            "stream_subscriptions": stream_subs})
            for r in conn.receptors.values():
                totals["offered"] += r.total_offered
                totals["ingested"] += r.total_ingested
                totals["shed"] += r.total_shed
                totals["blocked"] += r.total_blocked
            for s in conn.subscriptions:
                totals["delivered_batches"] += s.sent_batches
                totals["delivered_rows"] += s.sent_rows
                if s.sink.evicted:
                    totals["evicted"] += 1
            for s in conn.stream_subs.values():
                totals["delivered_batches"] += s.cursor.sent_batches
                totals["delivered_rows"] += s.cursor.sent_rows
        with self._lock:
            for receptor in self._orphan_receptors:
                totals["offered"] += receptor.total_offered
                totals["ingested"] += receptor.total_ingested
                totals["shed"] += receptor.total_shed
                totals["blocked"] += receptor.total_blocked
        return {"address": f"{self.host}:{self.port}",
                "running": self.running,
                "admission": self.admission,
                "max_pending_batches": self.max_pending_batches,
                "max_client_queue": self.max_client_queue,
                "steps": self.steps,
                "connections_total": self.connections_total,
                "connections": entries,
                "totals": totals}

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (f"DataCellServer({self.host}:{self.port}, {state}, "
                f"conns={len(self._conns)})")


async def _close_listener(server: asyncio.AbstractServer) -> None:
    server.close()
    await server.wait_closed()
