"""A blocking DataCell network client.

One :class:`DataCellClient` is one connection: a producer
(:meth:`ingest`), a subscriber (:meth:`subscribe` + :meth:`results`),
or both. Replies are matched synchronously; RESULT frames that arrive
while waiting for a reply are buffered and surfaced by the next
:meth:`results` call, so a mixed producer/subscriber connection works.

The client is deliberately simple — blocking sockets, one thread — as
the building block for tests, benchmarks, and the ``repro send`` /
``repro tail`` CLI tools::

    with DataCellClient(port=server.port) as client:
        client.ingest("sensors", [[1, 21.5], [2, 22.0]])
        client.subscribe("hot_rooms")
        for batch in client.results(max_batches=3, timeout=5.0):
            print(batch.rows)
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import NetError
from repro.net import protocol


class ResultBatch:
    """One in-order result delivery from a standing query or a
    stream subscription.

    Stream-subscription batches additionally carry the tuple oid range
    ``[offset, end)`` they cover and ``replay`` (true while the server
    is still streaming history from before the subscribe); query
    batches leave those as ``None``/``False``.
    """

    __slots__ = ("query", "seq", "t", "columns", "rows",
                 "stream", "offset", "end", "replay")

    def __init__(self, query: str, seq: int, t: int,
                 columns: List[str], rows: List[Tuple[Any, ...]],
                 stream: Optional[str] = None,
                 offset: Optional[int] = None,
                 end: Optional[int] = None,
                 replay: bool = False):
        self.query = query
        self.seq = seq
        self.t = t
        self.columns = columns
        self.rows = rows
        self.stream = stream
        self.offset = offset
        self.end = end
        self.replay = replay

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        label = f"stream={self.stream}" if self.stream \
            else self.query
        return (f"ResultBatch({label}, seq={self.seq}, "
                f"t={self.t}, rows={len(self.rows)})")


class DataCellClient:
    """Blocking framed client for one :class:`DataCellServer`.

    Not thread-safe: use one client per thread (one "separate process
    per client", as the paper puts it).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 codec: str = "json", timeout_s: float = 10.0,
                 client_name: str = "repro-client"):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.closed = False
        self.last_error: Optional[NetError] = None
        self.subscriptions: Dict[str, List[str]] = {}
        # stream-name -> next undelivered offset (resume coordinate)
        self.stream_offsets: Dict[str, int] = {}
        self._auto_ack: Dict[str, bool] = {}
        self._pending_results: List[ResultBatch] = []
        try:
            sock = socket.create_connection((host, port),
                                            timeout=timeout_s)
        except OSError as exc:
            raise NetError(f"cannot connect to {host}:{port}: {exc}",
                           code="connect") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._stream = protocol.FrameStream(sock)
        self._stream.send(protocol.hello(codec=codec,
                                         client=client_name))
        reply = self._read_reply()
        self._stream.set_codec(str(reply.get("codec", "json")))
        self.server_info = reply

    # -- plumbing ------------------------------------------------------

    def _read_frame(self) -> Optional[Dict[str, Any]]:
        try:
            return self._stream.recv()
        except socket.timeout:
            raise NetError(
                f"timed out after {self.timeout_s}s waiting for the "
                f"server", code="timeout") from None

    def _read_reply(self) -> Dict[str, Any]:
        """Next non-RESULT frame; RESULTs seen on the way are buffered."""
        while True:
            message = self._read_frame()
            if message is None:
                self.closed = True
                raise NetError("server closed the connection",
                               code="closed")
            kind = message.get("type")
            if kind == protocol.RESULT:
                self._pending_results.append(self._to_batch(message))
                continue
            if kind == protocol.ERROR:
                raise NetError(str(message.get("message", "")),
                               code=str(message.get("code", "")))
            return message

    def _to_batch(self, message: Dict[str, Any]) -> ResultBatch:
        stream = message.get("stream")
        batch = ResultBatch(
            str(message.get("query", "")),
            int(message.get("seq", -1)), int(message.get("t", -1)),
            list(message.get("columns") or []),
            [tuple(r) for r in (message.get("rows") or [])],
            stream=str(stream).lower() if stream else None,
            offset=message.get("offset"),
            end=message.get("end"),
            replay=bool(message.get("replay", False)))
        if batch.stream is not None and batch.end is not None:
            self.stream_offsets[batch.stream] = int(batch.end)
            if self._auto_ack.get(batch.stream):
                self._stream.send(protocol.ack(batch.stream,
                                               int(batch.end)))
        return batch

    def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self.closed:
            raise NetError("client is closed", code="closed")
        self._stream.send(message)
        return self._read_reply()

    # -- producer side -------------------------------------------------

    def ingest(self, stream: str, rows: Sequence[Sequence[Any]],
               seq: Optional[int] = None) -> int:
        """Ship one batch; returns the accepted row count.

        Raises :class:`NetError` with ``code="shed"`` when the server's
        admission queue rejected the batch (shed policy), and with
        ``code="overload"`` when a blocking admission timed out.
        """
        reply = self._request(protocol.ingest(
            stream, [list(r) for r in rows], seq=seq))
        return int(reply.get("accepted", 0))

    # -- subscriber side -----------------------------------------------

    def subscribe(self, query: str) -> List[str]:
        """Attach to a standing query; returns its column names."""
        reply = self._request(protocol.subscribe(query))
        columns = list(reply.get("columns") or [])
        self.subscriptions[query.lower()] = columns
        return columns

    def subscribe_stream(self, stream: str,
                         from_offset: Optional[int] = None,
                         auto_ack: bool = True) -> List[str]:
        """Attach to a raw stream; returns its column names.

        ``from_offset=None`` follows live tuples from the current
        head; an integer replays durable history from that oid first
        (clamped to what the server retains), then splices into live
        delivery — RESULT frames carry ``replay=True`` until caught
        up. With ``auto_ack`` every received batch is confirmed back
        (:func:`protocol.ack`), so :attr:`stream_offsets` is the
        resume coordinate after a reconnect.
        """
        stream = stream.lower()
        reply = self._request(protocol.subscribe(
            stream=stream, from_offset=from_offset))
        columns = list(reply.get("columns") or [])
        self.subscriptions[stream] = columns
        self.stream_offsets[stream] = int(reply.get("offset", 0))
        self._auto_ack[stream] = bool(auto_ack)
        return columns

    def ack(self, stream: str, offset: int) -> None:
        """Explicitly confirm delivery up to *offset* (no reply)."""
        self._stream.send(protocol.ack(stream.lower(), offset))

    def results(self, max_batches: Optional[int] = None,
                max_rows: Optional[int] = None,
                timeout: float = 5.0) -> List[ResultBatch]:
        """Collect in-order result batches until a limit or *timeout*.

        Stops early when the server closes the connection or sends an
        ERROR frame (e.g. ``evicted``); the error is kept on
        :attr:`last_error` so already-collected batches are not lost.
        """
        batches: List[ResultBatch] = []
        rows_seen = 0

        def done() -> bool:
            if max_batches is not None and len(batches) >= max_batches:
                return True
            return max_rows is not None and rows_seen >= max_rows

        while self._pending_results and not done():
            batch = self._pending_results.pop(0)
            batches.append(batch)
            rows_seen += batch.row_count
        deadline = time.monotonic() + timeout
        while not done():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._stream.sock.settimeout(min(remaining, 0.2))
            try:
                message = self._stream.recv()
            except socket.timeout:
                continue
            finally:
                self._stream.sock.settimeout(self.timeout_s)
            if message is None:
                self.closed = True
                break
            kind = message.get("type")
            if kind == protocol.RESULT:
                batch = self._to_batch(message)
                batches.append(batch)
                rows_seen += batch.row_count
            elif kind == protocol.ERROR:
                self.last_error = NetError(
                    str(message.get("message", "")),
                    code=str(message.get("code", "")))
                break
        return batches

    # -- inspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The server's ``network_stats()`` (engine + edge counters)."""
        reply = self._request(protocol.stats())
        return dict(reply.get("payload") or {})

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._stream.close()

    def __enter__(self) -> "DataCellClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"DataCellClient({self.host}:{self.port}, {state})"
