"""An interactive DataCell shell — the textual demo console.

The VLDB demo let the audience pose queries, watch the query network,
pause/resume components and read the analysis pane; this REPL offers
the same controls::

    python -m repro.cli              # interactive
    python -m repro.cli script.sql   # run a script, then exit

The network-edge tools live behind subcommands (see
:mod:`repro.net.cli`)::

    python -m repro.cli serve --port 9001 --script init.sql
    python -m repro.cli send sensors --port 9001 < rows.txt
    python -m repro.cli tail hot_rooms --port 9001

Plain input is SQL (terminated by ``;``). Dot-commands drive the
runtime:

=================  ====================================================
``.register``      ``.register name [mode] SELECT ...;`` standing query
``.remove q``      drop a standing query
``.pause x``       pause a query or stream        (``.resume x`` undoes)
``.feed s v,..``   push one tuple into stream ``s``
``.run ms``        advance the simulated clock, stepping the net
``.step``          one scheduler step
``.results q [n]`` last ``n`` result batches of query ``q``
``.explain x``     plan pane for a query name or SQL text
``.network``       the query-network pane (demo Fig. 3)
``.analysis``      the performance pane (demo Fig. 4)
``.net``           the network-edge pane (per-connection counters)
``.pg``            the Postgres front-end pane (per-session counters)
``.recycler``      shared-work cache counters (hits/misses/evictions,
                   policy, chain stamps/hits, bytes & ms saved)
``.interp``        plan-execution pane (slot-compiler counters,
                   per-opcode profile, autotuner budget trajectory)
``.log``           durability pane (per-stream log segments, durable
                   watermarks, checkpoint/recovery counters, plus a
                   ``retention`` line per stream: floor, retained
                   bytes, truncations, paged-window reads)
``.checkpoint``    force a checkpoint now (durable engines)
``.scheduler``     worker-pool / wave counters and failure totals
``.queries``       list standing queries
``.help / .quit``
=================  ====================================================
"""

from __future__ import annotations

import sys
from typing import IO, List, Optional

from repro.core.engine import DataCellEngine
from repro.errors import DataCellError
from repro.mal.relation import Relation


def parse_row_values(text: str) -> List:
    """Parse a comma-separated row of SQL-ish literals (numbers,
    ``'strings'``, ``null``/empty) into Python values. Shared by the
    shell's ``.feed`` and the ``repro send`` CLI."""
    row = []
    for cell in text.split(","):
        cell = cell.strip()
        if cell.lower() == "null" or cell == "":
            row.append(None)
        elif cell.startswith("'") and cell.endswith("'") and len(cell) > 1:
            row.append(cell[1:-1])
        else:
            try:
                row.append(int(cell))
            except ValueError:
                row.append(float(cell))
    return row


class DataCellShell:
    """Line-oriented REPL over one :class:`DataCellEngine`."""

    def __init__(self, engine: Optional[DataCellEngine] = None,
                 out: IO = sys.stdout):
        self.engine = engine if engine is not None else DataCellEngine()
        self.out = out
        self._buffer: List[str] = []
        self.done = False

    # -- output helpers ------------------------------------------------

    def _print(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def _show(self, result) -> None:
        if isinstance(result, Relation):
            self._print(result.pretty())
            self._print(f"({result.row_count} rows)")
        else:
            self._print(str(result))

    # -- the loop ------------------------------------------------------

    def run(self, source: IO, interactive: bool = True) -> None:
        if interactive:
            self._print("DataCell shell — SQL ends with ';', "
                        "'.help' for commands, '.quit' to leave")
        while not self.done:
            if interactive:
                prompt = "datacell> " if not self._buffer else "     ...> "
                self.out.write(prompt)
                self.out.flush()
            line = source.readline()
            if not line:
                break
            self.handle_line(line.rstrip("\n"))

    def handle_line(self, line: str) -> None:
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            self._command(stripped)
            return
        if not stripped and not self._buffer:
            return
        self._buffer.append(line)
        if stripped.endswith(";"):
            sql = "\n".join(self._buffer)
            self._buffer = []
            self._run_sql(sql)

    def _run_sql(self, sql: str) -> None:
        try:
            self._show(self.engine.execute(sql))
        except DataCellError as exc:
            self._print(f"error: {exc}")

    # -- dot commands ----------------------------------------------------

    def _command(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0][1:].lower()
        arg = parts[1].strip() if len(parts) > 1 else ""
        handler = getattr(self, f"_cmd_{name}", None)
        if handler is None:
            self._print(f"unknown command .{name} — try .help")
            return
        try:
            handler(arg)
        except (DataCellError, ValueError) as exc:
            self._print(f"error: {exc}")

    def _cmd_help(self, arg: str) -> None:
        self._print(__doc__.split("=\n", 1)[-1] if False else __doc__)

    def _cmd_quit(self, arg: str) -> None:
        self.done = True

    def _cmd_exit(self, arg: str) -> None:
        self.done = True

    def _cmd_register(self, arg: str) -> None:
        """.register name [reeval|incremental|delta|auto] SELECT ...;"""
        tokens = arg.split(None, 2)
        if len(tokens) >= 2 and tokens[1].lower() in (
                "reeval", "incremental", "delta", "auto"):
            name, mode, sql = tokens[0], tokens[1].lower(), tokens[2]
        elif len(tokens) >= 2:
            name, mode = tokens[0], "auto"
            sql = arg.split(None, 1)[1]
        else:
            self._print("usage: .register <name> [mode] SELECT ...;")
            return
        query = self.engine.register_continuous(
            sql.rstrip(";"), name=name, mode=mode)
        self._print(f"registered {query.name!r} ({query.mode} mode)")

    def _cmd_remove(self, arg: str) -> None:
        self.engine.remove_query(arg)
        self._print(f"removed {arg!r}")

    def _cmd_pause(self, arg: str) -> None:
        if self.engine.catalog.is_stream(arg):
            self.engine.pause_stream(arg)
        else:
            self.engine.pause_query(arg)
        self._print(f"paused {arg!r}")

    def _cmd_resume(self, arg: str) -> None:
        if self.engine.catalog.is_stream(arg):
            self.engine.resume_stream(arg)
        else:
            self.engine.resume_query(arg)
        self._print(f"resumed {arg!r}")

    def _cmd_feed(self, arg: str) -> None:
        """.feed stream v1, v2, ... — one tuple, values parsed as SQL
        literals (numbers, 'strings', null)."""
        stream, _sep, values = arg.partition(" ")
        row = parse_row_values(values)
        n = self.engine.feed(stream, [row])
        self.engine.step()
        self._print(f"+{n} tuple into {stream!r}")

    def _cmd_run(self, arg: str) -> None:
        duration = int(arg) if arg else 1000
        totals = self.engine.run_for(duration)
        self._print(f"ran {duration}ms: {totals}")

    def _cmd_step(self, arg: str) -> None:
        advance = int(arg) if arg else 0
        self._print(str(self.engine.step(advance_ms=advance)))

    def _cmd_results(self, arg: str) -> None:
        parts = arg.split()
        if not parts:
            self._print("usage: .results <query> [n]")
            return
        name = parts[0]
        count = int(parts[1]) if len(parts) > 1 else 1
        sink = self.engine.results(name)
        batches = sink.batches[-count:]
        if not batches:
            self._print("(no results yet)")
        for now, rel in batches:
            self._print(f"-- t={now}ms")
            self._print(rel.pretty())

    def _cmd_explain(self, arg: str) -> None:
        self._print(self.engine.explain(arg.rstrip(";")))

    def _cmd_network(self, arg: str) -> None:
        self._print(self.engine.monitor.network())

    def _cmd_intermediates(self, arg: str) -> None:
        if not arg:
            self._print("usage: .intermediates <query>")
            return
        self._print(self.engine.monitor.intermediates(arg))

    def _cmd_analysis(self, arg: str) -> None:
        self._print(self.engine.monitor.analysis())

    def _cmd_net(self, arg: str) -> None:
        self._print(self.engine.monitor.net())

    def _cmd_pg(self, arg: str) -> None:
        self._print(self.engine.monitor.pg())

    def _cmd_recycler(self, arg: str) -> None:
        stats = self.engine.recycler.stats()
        state = "on" if stats["enabled"] else "off"
        self._print(f"recycler [{state}] policy={stats['policy']}:")
        for key in ("hits", "misses", "slice_hits", "slice_misses",
                    "chain_stamped", "chain_hits", "bytes_saved",
                    "cost_saved_ms", "evictions", "invalidations",
                    "entries", "bytes", "budget_bytes"):
            self._print(f"  {key}: {stats[key]}")
        reasons = ", ".join(f"{k}={v}" for k, v in
                            sorted(stats["eviction_reasons"].items()))
        self._print(f"  eviction_reasons: {reasons}")

    def _cmd_interp(self, arg: str) -> None:
        self._print(self.engine.monitor.interp())

    def _cmd_log(self, arg: str) -> None:
        self._print(self.engine.monitor.log())

    def _cmd_checkpoint(self, arg: str) -> None:
        if not self.engine.durable:
            self._print("engine has no data_dir (durability off)")
            return
        self.engine.checkpoint()
        self._print(f"checkpoint written to {self.engine.data_dir!r} "
                    f"in {self.engine.last_checkpoint_ms:.1f} ms")

    def _cmd_scheduler(self, arg: str) -> None:
        sched = self.engine.scheduler
        mode = "parallel" if sched.parallel_workers > 1 else "serial"
        self._print(f"scheduler [{mode}]:")
        self._print(f"  steps: {sched.steps}")
        self._print(f"  total_fired: {sched.total_fired}")
        for key, value in sched.parallel_stats().items():
            self._print(f"  {key}: {value}")
        self._print(f"  failed_total: {sched.failed_total}")
        for exc in sched.failed:
            self._print(f"    {exc}")

    def _cmd_queries(self, arg: str) -> None:
        queries = self.engine.queries()
        if not queries:
            self._print("(no standing queries)")
        for query in queries:
            self._print(f"  {query.name} [{query.mode}] "
                        f"fires={query.factory.fires}: "
                        f"{query.sql_text}")

    def _cmd_save(self, arg: str) -> None:
        if not arg:
            self._print("usage: .save <directory>")
            return
        self.engine.save(arg)
        self._print(f"saved engine state to {arg!r}")

    def _cmd_restore(self, arg: str) -> None:
        if not arg:
            self._print("usage: .restore <directory>")
            return
        from repro.core.engine import DataCellEngine

        self.engine = DataCellEngine.restore(arg)
        self._print(f"restored engine from {arg!r} "
                    f"({len(self.engine.queries())} standing queries)")

    def _cmd_sample(self, arg: str) -> None:
        snap = self.engine.monitor.sample()
        self._print(f"sampled t={snap['t']}ms "
                    f"({len(self.engine.monitor.samples)} samples)")


NET_COMMANDS = ("serve", "send", "tail")


def main(argv: Optional[List[str]] = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if argv and argv[0] in NET_COMMANDS:
        from repro.net.cli import main as net_main

        return net_main(argv)
    shell = DataCellShell()
    if argv:
        with open(argv[0]) as f:
            shell.run(f, interactive=False)
        return 0
    shell.run(sys.stdin, interactive=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
