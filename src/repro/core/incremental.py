"""Incremental sliding-window execution: split plans, cache, merge.

The paper, §3: *"we design and develop the incremental logic at the query
plan level [...] query plans are split such as as many operators as
possible can run independently on each portion of a sliding window
stream. Then, when blocking operators occur, the plan merges
intermediates from the active slides."*

:func:`analyze_incremental` splits an optimized logical plan into

* a **per-slice pipeline** (stream scan + filters/projections and any
  joins against persistent tables) that runs once per *basic window* and
  whose columnar output is cached;
* an optional **blocking aggregate**, evaluated as mergeable partial
  states per basic window (count / sum / avg / min / max);
* the **post-merge tail** (HAVING, ORDER BY, final projection, DISTINCT,
  LIMIT) that runs on the merged window result.

Two pipeline shapes are supported: a single windowed stream (optionally
joined with tables) and an equi-join of two windowed streams (per-pair
join caching). Everything else raises :class:`UnsupportedIncremental`
and the engine falls back to re-evaluation mode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamError
from repro.mal import kernel
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.sql.executor import (ExecutionContext, PlanExecutor,
                                apply_predicate, join_relations,
                                project_relation, sort_relation)
from repro.sql.expressions import BoundAgg
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, PlanNode, ProjectNode,
                            SortNode, StreamScanNode, UnionNode,
                            walk_plan)


class UnsupportedIncremental(StreamError):
    """The plan shape cannot run incrementally; fall back to re-eval."""


_MERGEABLE = frozenset(["count", "sum", "avg", "min", "max",
                        "stddev", "variance"])


class IncrementalAnalysis:
    """Result of splitting a plan for incremental execution."""

    def __init__(self, plan: PlanNode, upper: List[PlanNode],
                 agg: Optional[AggregateNode], pipeline: PlanNode,
                 stream_scans: List[StreamScanNode]):
        self.plan = plan
        self.upper = upper            # root-first, applied post-merge
        self.agg = agg
        self.pipeline = pipeline
        self.stream_scans = stream_scans
        self.kind = "single" if len(stream_scans) == 1 else "join2"
        self.join_node: Optional[JoinNode] = None
        self.left_pipeline: Optional[PlanNode] = None
        self.right_pipeline: Optional[PlanNode] = None
        if self.kind == "join2":
            if not isinstance(pipeline, JoinNode):
                raise UnsupportedIncremental(
                    "two windowed streams must meet at the top-level join")
            self.join_node = pipeline
            self.left_pipeline = pipeline.left
            self.right_pipeline = pipeline.right
            lscans = [s for s in walk_plan(pipeline.left)
                      if isinstance(s, StreamScanNode)]
            rscans = [s for s in walk_plan(pipeline.right)
                      if isinstance(s, StreamScanNode)]
            if len(lscans) != 1 or len(rscans) != 1:
                raise UnsupportedIncremental(
                    "stream-stream join needs one stream per side")
            self.left_stream = lscans[0].stream_name
            self.right_stream = rscans[0].stream_name

    def describe(self) -> str:
        """Textual split description (the demo's plan-shape view)."""
        lines = ["incremental split:"]
        lines.append("  per-slice pipeline:")
        lines.extend("    " + ln
                     for ln in self.pipeline.pretty().splitlines())
        if self.agg is not None:
            lines.append(f"  blocking merge: {self.agg.label()}")
        else:
            lines.append("  blocking merge: concat of live slices")
        if self.upper:
            chain = " <- ".join(n.label() for n in self.upper)
            lines.append(f"  post-merge tail: {chain}")
        return "\n".join(lines)


def analyze_incremental(plan: PlanNode) -> IncrementalAnalysis:
    """Split *plan*; raises :class:`UnsupportedIncremental` on mismatch."""
    upper: List[PlanNode] = []
    node = plan
    while isinstance(node, (LimitNode, DistinctNode, ProjectNode,
                            SortNode, FilterNode)):
        upper.append(node)
        node = node.children[0]

    agg: Optional[AggregateNode] = None
    if isinstance(node, AggregateNode):
        agg = node
        node = node.child
        for a in agg.aggs:
            if a.op not in _MERGEABLE:
                raise UnsupportedIncremental(
                    f"aggregate {a.op!r} has no mergeable partial state")
            if a.distinct:
                raise UnsupportedIncremental(
                    "DISTINCT aggregates have no mergeable partial state")
    else:
        # without a blocking aggregate, trailing filters commute with
        # the concat merge — run them per slice instead
        while upper and isinstance(upper[-1], FilterNode):
            node = upper.pop()

    pipeline = node
    stream_scans = []
    for sub in walk_plan(pipeline):
        if isinstance(sub, StreamScanNode):
            stream_scans.append(sub)
        elif isinstance(sub, AggregateNode):
            raise UnsupportedIncremental(
                "nested aggregation below the blocking aggregate")
        elif isinstance(sub, (SortNode, DistinctNode, LimitNode,
                              UnionNode)):
            raise UnsupportedIncremental(
                f"blocking operator {sub.label()} inside the per-slice "
                f"pipeline")
        elif isinstance(sub, JoinNode) and sub.join_type != "inner":
            # a per-slice outer join is only equivalent when the
            # nil-padded (left) side is the stream slice itself
            left_streams = [s for s in walk_plan(sub.left)
                            if isinstance(s, StreamScanNode)]
            right_streams = [s for s in walk_plan(sub.right)
                             if isinstance(s, StreamScanNode)]
            if right_streams or not left_streams:
                raise UnsupportedIncremental(
                    f"{sub.join_type.upper()} JOIN is incremental only "
                    f"with the stream on the preserved (left) side")
    if not stream_scans:
        raise UnsupportedIncremental("no stream input in the plan")
    if len(stream_scans) > 2:
        raise UnsupportedIncremental(
            "more than two windowed streams are not supported")
    for scan in stream_scans:
        if scan.window is None:
            raise UnsupportedIncremental(
                f"stream {scan.stream_name!r} has no window clause")
    return IncrementalAnalysis(plan, upper, agg, pipeline, stream_scans)


# ---------------------------------------------------------------------
# shared plan-fragment runners (incremental + delta executors)
# ---------------------------------------------------------------------

def run_pipeline(catalog, pipeline: PlanNode, stream: str,
                 slice_rel: Relation) -> Relation:
    """Run a per-slice pipeline with *slice_rel* bound as *stream*."""
    def reader(name: str) -> Relation:
        if name == stream:
            return slice_rel
        raise StreamError(
            f"pipeline for {stream!r} asked for stream {name!r}")

    ctx = ExecutionContext(catalog, reader)
    return PlanExecutor(ctx).execute(pipeline)


def apply_upper(rel: Relation, upper: Sequence[PlanNode]) -> Relation:
    """Apply the post-merge tail (root-first list) to a window result."""
    for node in reversed(upper):
        if isinstance(node, FilterNode):
            rel = apply_predicate(rel, node.predicate)
        elif isinstance(node, SortNode):
            rel = sort_relation(rel, node.keys)
        elif isinstance(node, ProjectNode):
            rel = project_relation(rel, node.exprs, node.names)
        elif isinstance(node, LimitNode):
            stop = None if node.limit is None \
                else node.offset + node.limit
            rel = rel.slice_rows(node.offset, stop)
        elif isinstance(node, DistinctNode):
            bats = [b for _n, b in rel.columns()]
            if bats and rel.row_count:
                rel = rel.take(kernel.distinct(bats))
        else:
            raise UnsupportedIncremental(
                f"unexpected post-merge node {node.label()}")
    return rel


# ---------------------------------------------------------------------
# mergeable partial aggregate states
# ---------------------------------------------------------------------

class PartialAggregator:
    """Computes, merges and finalizes per-basic-window aggregate states.

    A partial is ``{group key tuple: [state, ...]}`` with one state per
    aggregate. States: count -> int; sum/avg -> (sum, nonnil_count);
    min/max -> value or None.
    """

    def __init__(self, agg_node: AggregateNode):
        self.node = agg_node

    # -- per basic window -----------------------------------------------

    def partial(self, rel: Relation) -> Dict[Tuple, List[Any]]:
        node = self.node
        n = rel.row_count
        if node.group_exprs:
            gids: Optional[np.ndarray] = None
            reps = None
            ngroups = 0
            group_bats = [e.evaluate(rel) for e in node.group_exprs]
            for bat in group_bats:
                gids, reps, ngroups = kernel.subgroup(bat, gids)
            key_rows = list(zip(*(b.take(reps).tolist()
                                  for b in group_bats))) if ngroups else []
        else:
            gids = np.zeros(n, dtype=np.int64)
            ngroups = 1
            key_rows = [()]
        out: Dict[Tuple, List[Any]] = {}
        per_agg = [self._states(agg, rel, gids, ngroups)
                   for agg in node.aggs]
        for g, key in enumerate(key_rows):
            out[tuple(key)] = [states[g] for states in per_agg]
        return out

    def _states(self, agg: BoundAgg, rel: Relation, gids: np.ndarray,
                ngroups: int) -> List[Any]:
        if agg.op == "count" and agg.arg is None:
            counts = np.bincount(gids, minlength=ngroups)
            return [int(c) for c in counts]
        arg = agg.arg.evaluate(rel)
        valid = ~arg.nil_mask()
        counts = np.bincount(gids[valid], minlength=ngroups)
        if agg.op == "count":
            return [int(c) for c in counts]
        if agg.op in ("sum", "avg"):
            sums = kernel.agg_sum(arg, gids, ngroups).tolist()
            return [(s if s is not None else 0, int(c))
                    for s, c in zip(sums, counts)]
        if agg.op == "min":
            return kernel.agg_min(arg, gids, ngroups).tolist()
        if agg.op == "max":
            return kernel.agg_max(arg, gids, ngroups).tolist()
        if agg.op in ("stddev", "variance"):
            ns, sums, sumsq = kernel._moments(arg, gids, ngroups, None)
            return [(float(n), float(s), float(q))
                    for n, s, q in zip(ns, sums, sumsq)]
        raise UnsupportedIncremental(f"aggregate {agg.op!r}")

    # -- across basic windows ------------------------------------------------

    def merge(self, partials: Sequence[Dict[Tuple, List[Any]]]
              ) -> Dict[Tuple, List[Any]]:
        merged: Dict[Tuple, List[Any]] = {}
        for partial in partials:
            for key, states in partial.items():
                if key not in merged:
                    merged[key] = list(states)
                    continue
                acc = merged[key]
                for i, agg in enumerate(self.node.aggs):
                    acc[i] = self._merge_one(agg.op, acc[i], states[i])
        return merged

    @staticmethod
    def _merge_one(op: str, a: Any, b: Any) -> Any:
        if op == "count":
            return a + b
        if op in ("sum", "avg"):
            return (a[0] + b[0], a[1] + b[1])
        if op in ("stddev", "variance"):
            return (a[0] + b[0], a[1] + b[1], a[2] + b[2])
        if op == "min":
            if a is None:
                return b
            if b is None:
                return a
            return a if a <= b else b
        if op == "max":
            if a is None:
                return b
            if b is None:
                return a
            return a if a >= b else b
        raise UnsupportedIncremental(f"aggregate {op!r}")

    # -- window result ------------------------------------------------------------

    def finalize(self, merged: Dict[Tuple, List[Any]]) -> Relation:
        node = self.node
        if node.group_exprs and not merged:
            return Relation.empty(node.schema)
        if not node.group_exprs and not merged:
            merged = {(): [self._empty_state(a.op) for a in node.aggs]}
        keys = list(merged.keys())
        out = Relation()
        for i, (name, expr) in enumerate(zip(node.group_names,
                                             node.group_exprs)):
            out.add(name, BAT.from_values(expr.dtype,
                                          [k[i] for k in keys],
                                          coerce=True))
        for i, (name, agg) in enumerate(zip(node.agg_names, node.aggs)):
            values = [self._final_value(agg, merged[k][i]) for k in keys]
            out.add(name, BAT.from_values(agg.dtype, values, coerce=True))
        return out

    @staticmethod
    def _empty_state(op: str) -> Any:
        if op == "count":
            return 0
        if op in ("sum", "avg"):
            return (0, 0)
        if op in ("stddev", "variance"):
            return (0.0, 0.0, 0.0)
        return None

    @staticmethod
    def _final_value(agg: BoundAgg, state: Any):
        if agg.op == "count":
            return state
        if agg.op == "sum":
            total, count = state
            return None if count == 0 else total
        if agg.op == "avg":
            total, count = state
            return None if count == 0 else total / count
        if agg.op in ("stddev", "variance"):
            import math

            var = kernel.variance_from_moments(*state)
            if var is None:
                return None
            return var if agg.op == "variance" else math.sqrt(var)
        return state  # min/max carry the value directly


# ---------------------------------------------------------------------
# the incremental executor (caches + merge)
# ---------------------------------------------------------------------

class IncrementalExecutor:
    """Holds the per-basic-window caches and produces window results.

    Cached payloads per (stream, bw index):

    * no aggregate — the per-slice pipeline output relation;
    * aggregate — the partial state dict (raw slice output dropped);
    * two-stream join — per-side pipeline outputs plus per (left bw,
      right bw) pair join results.
    """

    def __init__(self, analysis: IncrementalAnalysis,
                 ctx: ExecutionContext, cache_enabled: bool = True):
        self.analysis = analysis
        self.ctx = ctx
        self.cache_enabled = cache_enabled
        self.aggregator = PartialAggregator(analysis.agg) \
            if analysis.agg is not None else None
        self._slices: Dict[Tuple[str, int], Relation] = {}
        self._partials: Dict[Tuple[str, int], Dict] = {}
        self._pairs: Dict[Tuple[int, int], Relation] = {}
        # statistics surfaced by the monitor / E10 ablation
        self.slices_computed = 0
        self.slices_reused = 0
        self.pairs_computed = 0
        self.pairs_reused = 0

    # -- per-basic-window processing -----------------------------------

    def process_basic_window(self, stream: str, bw_index: int,
                             slice_rel: Relation) -> None:
        """Run the per-slice pipeline over one basic window and cache."""
        key = (stream, bw_index)
        if self.analysis.kind == "single":
            out = self._run_pipeline(self.analysis.pipeline, stream,
                                     slice_rel)
            if self.aggregator is not None:
                self._partials[key] = self.aggregator.partial(out)
            else:
                self._slices[key] = out
        else:
            side = self.analysis.left_pipeline \
                if stream == self.analysis.left_stream \
                else self.analysis.right_pipeline
            self._slices[key] = self._run_pipeline(side, stream, slice_rel)
        self.slices_computed += 1

    def _run_pipeline(self, pipeline: PlanNode, stream: str,
                      slice_rel: Relation) -> Relation:
        return run_pipeline(self.ctx.catalog, pipeline, stream, slice_rel)

    # -- firing a full window -----------------------------------------------

    def fire(self, compositions: Dict[str, List[int]]) -> Relation:
        if self.analysis.kind == "single":
            rel = self._fire_single(compositions)
        else:
            rel = self._fire_join2(compositions)
        return self._apply_upper(rel)

    def _fire_single(self, compositions: Dict[str, List[int]]) -> Relation:
        stream = self.analysis.stream_scans[0].stream_name
        bws = compositions[stream]
        if self.aggregator is not None:
            partials = [self._partials[(stream, j)] for j in bws
                        if (stream, j) in self._partials]
            self.slices_reused += max(len(partials) - 1, 0)
            return self.aggregator.finalize(self.aggregator.merge(partials))
        pieces = [self._slices[(stream, j)] for j in bws
                  if (stream, j) in self._slices]
        self.slices_reused += max(len(pieces) - 1, 0)
        return self._concat(pieces, self.analysis.pipeline)

    def _fire_join2(self, compositions: Dict[str, List[int]]) -> Relation:
        a = self.analysis
        pieces = []
        for i in compositions[a.left_stream]:
            for j in compositions[a.right_stream]:
                payload = self._pair_payload((i, j))
                if payload is not None:
                    pieces.append(payload)
        if self.aggregator is not None:
            # pieces are per-pair partial aggregate states: the full
            # join output is never re-materialized on a slide
            return self.aggregator.finalize(self.aggregator.merge(pieces))
        return self._concat(pieces, a.join_node)

    def _pair_payload(self, pair: Tuple[int, int]):
        """Join result for one (left bw, right bw) pair — as a cached
        relation, or as a cached partial-aggregate state dict when a
        blocking aggregate sits above the join."""
        a = self.analysis
        cached = self._pairs.get(pair)
        if cached is not None:
            self.pairs_reused += 1
            return cached
        left = self._slices.get((a.left_stream, pair[0]))
        right = self._slices.get((a.right_stream, pair[1]))
        if left is None or right is None:
            return None
        joined = join_relations(left, right, a.join_node.left_key,
                                a.join_node.right_key)
        if a.join_node.residual is not None:
            joined = apply_predicate(joined, a.join_node.residual)
        payload = joined if self.aggregator is None \
            else self.aggregator.partial(joined)
        if self.cache_enabled:
            self._pairs[pair] = payload
        self.pairs_computed += 1
        return payload

    @staticmethod
    def _concat(pieces: List[Relation], schema_node: PlanNode) -> Relation:
        live = [p for p in pieces if p.row_count >= 0]
        if not live:
            return Relation.empty(schema_node.schema)
        out = live[0]
        for piece in live[1:]:
            out = out.concat(piece)
        return out

    def _apply_upper(self, rel: Relation) -> Relation:
        return apply_upper(rel, self.analysis.upper)

    # -- cache maintenance ------------------------------------------------------

    def evict(self, floors: Dict[str, int]) -> int:
        """Drop cache entries for basic windows below each stream's floor."""
        evicted = 0
        for store in (self._slices, self._partials):
            dead = [k for k in store
                    if k[0] in floors and k[1] < floors[k[0]]]
            for k in dead:
                del store[k]
            evicted += len(dead)
        a = self.analysis
        if a.kind == "join2":
            lfloor = floors.get(a.left_stream, 0)
            rfloor = floors.get(a.right_stream, 0)
            dead_pairs = [p for p in self._pairs
                          if p[0] < lfloor or p[1] < rfloor]
            for p in dead_pairs:
                del self._pairs[p]
            evicted += len(dead_pairs)
        return evicted

    def cached_intermediate_rows(self) -> int:
        """Total rows held in intermediate caches (monitoring)."""
        total = sum(r.row_count for r in self._slices.values())
        total += sum(p.row_count if isinstance(p, Relation) else len(p)
                     for p in self._pairs.values())
        total += sum(len(p) for p in self._partials.values())
        return total

    def cache_stats(self) -> Dict[str, int]:
        return {
            "slices_cached": len(self._slices),
            "partials_cached": len(self._partials),
            "pairs_cached": len(self._pairs),
            "slices_computed": self.slices_computed,
            "slices_reused": self.slices_reused,
            "pairs_computed": self.pairs_computed,
            "pairs_reused": self.pairs_reused,
            "cached_rows": self.cached_intermediate_rows(),
        }
