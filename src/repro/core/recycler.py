"""The intermediate recycler: cross-query shared work on one stream.

DataCell's headline scenario is many standing queries over one shared
stream. Without sharing, each factory firing independently re-slices
the same basket window and re-runs identical leading select/project
operators — per-query cost grows linearly where the shared-basket
design promises sub-linear scaling. This module is the MonetDB-recycler
answer (Ivanova et al., SIGMOD 2009) adapted to the streaming setting:

* **window slices** — within and across scheduler steps, the first
  factory to request basket window ``[lo, hi)`` materializes it once;
  every other factory subscribed to the same window gets the *same*
  Relation object (zero extra copies, zero-copy column views of the
  shared materialization);
* **instruction intermediates** — candidate lists, fetched columns,
  group states and any other pure operator result, keyed by the
  instruction's structural fingerprint
  (:mod:`repro.mal.fingerprint`) plus the oid-ranges of the stream
  windows in its lineage.

Because cache keys carry *absolute* oid ranges and basket oids are
stable for the lifetime of a tuple, a cached value never goes stale:
the content of window ``[lo, hi)`` cannot change. Invalidation is
therefore about memory, not correctness — entries whose windows fall
entirely below a basket's vacuumed ``first_oid`` can never be requested
again and are dropped eagerly (:meth:`Recycler.evict_dead`), a byte
budget bounds the rest, and :meth:`Recycler.purge_basket` guards
the one true-staleness case (a stream dropped and re-created under the
same name restarts its oid sequence).

Two budget-eviction policies are available (``policy=``):

* ``"benefit"`` (default) — MonetDB's recycler weighting (Ivanova et
  al.): evict the entry with the lowest *benefit density*
  ``cost_ms × (1 + reuses) / nbytes``, i.e. cheapest to recompute,
  least reused, largest. Every entry records its evaluation wall time
  at insert (the interpreter brackets each instruction; window-slice
  materialization is timed here) and counts its reuses; recency is
  only the tie-breaker, so a hot-but-large intermediate survives a
  churn of one-shot entries that plain LRU would let push it out.
* ``"lru"`` — the original recency-only order, preserved for the
  equivalence suite and as an ablation baseline.

A third sharing layer rides on the same cache: **chained emit
payloads**. When a factory appends a firing's result into an
``output_stream`` basket, the appended oid range is stamped with the
producing plan's fingerprint (:func:`repro.mal.fingerprint.
emit_fingerprint`) and the payload is adopted as the window slice for
exactly that range (:meth:`Recycler.adopt_slice`). A downstream
stage's scan of the output basket then resolves to the upstream emit
payload directly — the stage boundary is a cache hit, not a
re-materialization.

Cached values are shared across factories and must be treated as
immutable — the kernel's operators are pure (they allocate fresh
outputs), which is what makes this safe.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.mal.bat import BAT
from repro.mal.relation import Relation

# key spaces: ("slice", basket, lo, hi) for shared window slices and
# ("ins", fingerprint, ((stream, lo, hi), ...)) for operator results
_SLICE = "slice"
_INS = "ins"

DEFAULT_BUDGET_BYTES = 64 << 20
POLICIES = ("benefit", "lru")

# every N dead-entry eviction scans, halve all reuse counters so stale
# high-benefit entries cannot pin the budget forever (reuse decay)
REUSE_DECAY_SCANS = 32


def payload_nbytes(value: Any) -> int:
    """Approximate resident size of a recycled payload."""
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            # object arrays hold pointers; charge a flat per-cell fee
            return int(value.size) * 64 + value.nbytes
        return int(value.nbytes)
    if isinstance(value, BAT):
        return payload_nbytes(value.values)
    if isinstance(value, Relation):
        return sum(payload_nbytes(bat) for _n, bat in value.columns())
    if isinstance(value, tuple):
        return sum(payload_nbytes(v) for v in value)
    return 64  # scalars, None, small bookkeeping


class _Entry:
    __slots__ = ("value", "nbytes", "ranges", "cost_ms", "reuses",
                 "chained")

    def __init__(self, value: Any, nbytes: int,
                 ranges: Tuple[Tuple[str, int, int], ...],
                 cost_ms: float = 0.0, chained: bool = False):
        self.value = value
        self.nbytes = nbytes
        self.ranges = ranges
        self.cost_ms = cost_ms
        self.reuses = 0
        self.chained = chained

    def density(self) -> float:
        """Benefit density: recompute cost × reuse frequency / bytes."""
        return (self.cost_ms * (1.0 + self.reuses)) / max(self.nbytes, 1)


class Recycler:
    """A per-engine cache of shareable streaming intermediates.

    ``policy`` picks the budget-eviction order: ``"benefit"`` (cost ×
    reuses / bytes, recency as tie-breaker) or ``"lru"`` (recency
    only). ``verify=True`` turns on the equivalence mode used by
    tests: the interpreter re-executes every instruction that hits the
    cache and asserts the recycled value matches the freshly computed
    one.
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 enabled: bool = True, verify: bool = False,
                 policy: str = "benefit", min_cost_ms: float = 0.0):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown recycler policy {policy!r} "
                f"(expected one of {POLICIES})")
        self.budget_bytes = int(budget_bytes)
        self.enabled = enabled
        self.verify = verify
        self.policy = policy
        # admission floor: entries cheaper to recompute than this are
        # never cached (they cost more in budget pressure than they save)
        self.min_cost_ms = float(min_cost_ms)
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        # concurrent factory firings (the scheduler's worker pool)
        # share this cache: every get/put/evict holds the lock so the
        # LRU order, byte accounting and counters stay consistent.
        # Payload materialization happens outside the lock — a racing
        # double-materialize is benign (both values are equal; one
        # wins the put)
        self._mutex = threading.Lock()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.slice_hits = 0
        self.slice_misses = 0
        # benefit accounting: work the cache provably absorbed
        self.bytes_saved = 0
        self.cost_saved_ms = 0.0
        # chained emit payloads adopted / resolved at stage boundaries
        self.chain_stamped = 0
        self.chain_hits = 0
        # admission filter + reuse decay bookkeeping
        self.admission_rejects = 0
        self.reuse_decays = 0
        self._dead_scans = 0
        # why entries left: budget pressure (per policy), vacuumed
        # windows, stream drop
        self.eviction_reasons: Dict[str, int] = {
            "lru": 0, "benefit": 0, "dead": 0, "purge": 0}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    # -- generic entry plumbing ----------------------------------------

    def _get(self, key: tuple) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def _account_hit(self, entry: _Entry) -> None:
        entry.reuses += 1
        self.bytes_saved += entry.nbytes
        self.cost_saved_ms += entry.cost_ms
        if entry.chained:
            self.chain_hits += 1

    def _pick_victim(self) -> tuple:
        """Key of the next budget-pressure victim under the policy.

        ``"lru"`` takes the head of the recency order. ``"benefit"``
        scans for the minimum benefit density; iteration follows the
        recency order (LRU first), and a strictly-lower comparison
        keeps the earliest minimum — i.e. LRU breaks density ties.
        """
        if self.policy == "lru":
            return next(iter(self._entries))
        victim_key = None
        victim_density = float("inf")
        for key, entry in self._entries.items():
            density = entry.density()
            if density < victim_density:
                victim_key = key
                victim_density = density
        return victim_key

    def _put(self, key: tuple, value: Any,
             ranges: Tuple[Tuple[str, int, int], ...],
             cost_ms: float = 0.0, chained: bool = False) -> None:
        nbytes = payload_nbytes(value)
        if nbytes > self.budget_bytes:
            return  # larger than the whole cache: not worth keeping
        if self.min_cost_ms > 0.0 and cost_ms < self.min_cost_ms:
            self.admission_rejects += 1
            return  # cheaper to recompute than to cache
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= old.nbytes
        self._entries[key] = _Entry(value, nbytes, ranges, cost_ms,
                                    chained)
        self.bytes_used += nbytes
        while self.bytes_used > self.budget_bytes and self._entries:
            victim_key = self._pick_victim()
            victim = self._entries.pop(victim_key)
            self.bytes_used -= victim.nbytes
            self.evictions += 1
            self.eviction_reasons[self.policy] += 1

    # -- shared window slices ------------------------------------------

    def window_slice(self, basket, lo: Optional[int], hi: Optional[int]
                     ) -> Tuple[Relation, Tuple[int, int]]:
        """The basket window ``[lo, hi)``, materialized at most once.

        Returns ``(relation, (lo, hi))`` with the bounds clamped to the
        basket's live oid range — the clamped range is the cache key,
        so every factory asking for the same window (however phrased)
        shares one Relation object.
        """
        lo, hi = basket.clamp_range(lo, hi)
        if not self.enabled:
            return basket.relation(lo, hi), (lo, hi)
        key = (_SLICE, basket.name, lo, hi)
        with self._mutex:
            entry = self._get(key)
            if entry is not None:
                self.slice_hits += 1
                self._account_hit(entry)
                return entry.value, (lo, hi)
            self.slice_misses += 1
        started = time.perf_counter()
        rel = basket.relation(lo, hi)
        cost_ms = (time.perf_counter() - started) * 1000.0
        with self._mutex:
            self._put(key, rel, ((basket.name, lo, hi),), cost_ms)
        return rel, (lo, hi)

    def adopt_slice(self, basket_name: str, lo: int, hi: int,
                    rel: Relation, fp: str,
                    cost_ms: float = 0.0) -> None:
        """Adopt a chained emit payload as the slice for ``[lo, hi)``.

        Called by a :class:`~repro.core.emitter.BasketSink` right after
        it appended *rel* to output basket *basket_name* at that oid
        range, with *fp* the producing plan's emit fingerprint
        (provenance; the basket records it per range) and *cost_ms*
        the upstream firing's evaluation wall time — what the entry
        saves a downstream stage from paying again. A later
        :meth:`window_slice` for exactly that range then returns the
        emitted payload without re-materializing the basket window.
        """
        if not self.enabled or hi <= lo:
            return
        key = (_SLICE, basket_name.lower(), lo, hi)
        with self._mutex:
            self._put(key, rel, ((basket_name.lower(), lo, hi),),
                      cost_ms, chained=True)
            self.chain_stamped += 1

    # -- instruction intermediates -------------------------------------

    @staticmethod
    def instruction_key(fp: str,
                        ranges: Iterable[Tuple[str, int, int]]) -> tuple:
        return (_INS, fp, tuple(sorted(ranges)))

    def lookup(self, key: tuple) -> Tuple[bool, Any]:
        """``(found, value)`` for an instruction-intermediate key."""
        if not self.enabled:
            return False, None
        with self._mutex:
            entry = self._get(key)
            if entry is None:
                self.misses += 1
                return False, None
            self.hits += 1
            self._account_hit(entry)
            return True, entry.value

    def store(self, key: tuple, value: Any,
              cost_ms: float = 0.0) -> None:
        """Publish an instruction result; *cost_ms* is the evaluation
        wall time the interpreter measured for it (the recompute cost
        the benefit-density policy weighs)."""
        if not self.enabled:
            return
        with self._mutex:
            self._put(key, value, key[2], cost_ms)

    # -- invalidation ---------------------------------------------------

    def evict_dead(self, floors: Dict[str, int]) -> int:
        """Drop entries whose windows are entirely below the vacuumed
        ``first_oid`` of their basket (they can never be requested
        again). *floors* maps basket name -> current first_oid.

        Doubles as the reuse-decay clock: every
        :data:`REUSE_DECAY_SCANS` scans, all reuse counters are halved
        so an entry that was hot long ago decays back toward its base
        benefit density instead of pinning the budget forever."""
        with self._mutex:
            self._dead_scans += 1
            if self._dead_scans % REUSE_DECAY_SCANS == 0:
                for entry in self._entries.values():
                    entry.reuses >>= 1
                self.reuse_decays += 1
            if not self._entries:
                return 0
            dead = []
            for key, entry in self._entries.items():
                ranges = entry.ranges
                if not ranges:
                    continue
                gone = True
                for name, _lo, hi in ranges:
                    floor = floors.get(name)
                    if floor is None or hi > floor:
                        gone = False
                        break
                if gone:
                    dead.append(key)
            for key in dead:
                entry = self._entries.pop(key)
                self.bytes_used -= entry.nbytes
                self.invalidations += 1
                self.eviction_reasons["dead"] += 1
            return len(dead)

    def purge_basket(self, basket_name: str) -> int:
        """Drop every entry touching *basket_name* (stream dropped or
        re-created: its oid sequence restarts, so keyed ranges would
        alias)."""
        basket_name = basket_name.lower()
        with self._mutex:
            dead = [key for key, entry in self._entries.items()
                    if any(name == basket_name for name, _l, _h in
                           entry.ranges)]
            for key in dead:
                entry = self._entries.pop(key)
                self.bytes_used -= entry.nbytes
                self.invalidations += 1
                self.eviction_reasons["purge"] += 1
            return len(dead)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self.bytes_used = 0

    # -- reporting -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._mutex:
            return {
                "enabled": int(self.enabled),
                "policy": self.policy,
                "entries": len(self._entries),
                "bytes": self.bytes_used,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "slice_hits": self.slice_hits,
                "slice_misses": self.slice_misses,
                "chain_stamped": self.chain_stamped,
                "chain_hits": self.chain_hits,
                "min_cost_ms": self.min_cost_ms,
                "admission_rejects": self.admission_rejects,
                "reuse_decays": self.reuse_decays,
                "bytes_saved": self.bytes_saved,
                "cost_saved_ms": round(self.cost_saved_ms, 3),
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "eviction_reasons": dict(self.eviction_reasons),
            }

    def __repr__(self) -> str:
        return (f"Recycler(policy={self.policy}, "
                f"entries={len(self._entries)}, "
                f"bytes={self.bytes_used}, hits={self.hits}, "
                f"misses={self.misses})")


def payloads_equal(a: Any, b: Any) -> bool:
    """Deep equality between a recycled payload and a fresh one (the
    equivalence/verify mode's comparator)."""
    if type(a) is not type(b):
        # allow int/float scalar identity across numpy/python boxing
        if isinstance(a, (int, float, np.integer, np.floating)) and \
                isinstance(b, (int, float, np.integer, np.floating)):
            return bool(a == b) or (a != a and b != b)
        return False
    if isinstance(a, np.ndarray):
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        if a.dtype == object:
            return all(x == y or (x is None and y is None)
                       for x, y in zip(a, b))
        if a.dtype.kind == "f":
            return bool(np.array_equal(a, b, equal_nan=True))
        return bool(np.array_equal(a, b))
    if isinstance(a, BAT):
        return a.dtype == b.dtype and payloads_equal(a.values, b.values)
    if isinstance(a, Relation):
        if a.names != b.names:
            return False
        return all(payloads_equal(a.column(n), b.column(n))
                   for n in a.names)
    if isinstance(a, tuple):
        return len(a) == len(b) and all(
            payloads_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            payloads_equal(a[k], b[k]) for k in a)
    if isinstance(a, float):
        return a == b or (a != a and b != b)
    return bool(a == b)
