"""The intermediate recycler: cross-query shared work on one stream.

DataCell's headline scenario is many standing queries over one shared
stream. Without sharing, each factory firing independently re-slices
the same basket window and re-runs identical leading select/project
operators — per-query cost grows linearly where the shared-basket
design promises sub-linear scaling. This module is the MonetDB-recycler
answer (Ivanova et al., SIGMOD 2009) adapted to the streaming setting:

* **window slices** — within and across scheduler steps, the first
  factory to request basket window ``[lo, hi)`` materializes it once;
  every other factory subscribed to the same window gets the *same*
  Relation object (zero extra copies, zero-copy column views of the
  shared materialization);
* **instruction intermediates** — candidate lists, fetched columns,
  group states and any other pure operator result, keyed by the
  instruction's structural fingerprint
  (:mod:`repro.mal.fingerprint`) plus the oid-ranges of the stream
  windows in its lineage.

Because cache keys carry *absolute* oid ranges and basket oids are
stable for the lifetime of a tuple, a cached value never goes stale:
the content of window ``[lo, hi)`` cannot change. Invalidation is
therefore about memory, not correctness — entries whose windows fall
entirely below a basket's vacuumed ``first_oid`` can never be requested
again and are dropped eagerly (:meth:`Recycler.evict_dead`), a byte
budget bounds the rest, and :meth:`Recycler.purge_basket` guards
the one true-staleness case (a stream dropped and re-created under the
same name restarts its oid sequence).

Two budget-eviction policies are available (``policy=``):

* ``"benefit"`` (default) — MonetDB's recycler weighting (Ivanova et
  al.): evict the entry with the lowest *benefit density*
  ``cost_ms × (1 + reuses) / nbytes``, i.e. cheapest to recompute,
  least reused, largest. Every entry records its evaluation wall time
  at insert (the interpreter brackets each instruction; window-slice
  materialization is timed here) and counts its reuses; recency is
  only the tie-breaker, so a hot-but-large intermediate survives a
  churn of one-shot entries that plain LRU would let push it out.
* ``"lru"`` — the original recency-only order, preserved for the
  equivalence suite and as an ablation baseline.

A third sharing layer rides on the same cache: **chained emit
payloads**. When a factory appends a firing's result into an
``output_stream`` basket, the appended oid range is stamped with the
producing plan's fingerprint (:func:`repro.mal.fingerprint.
emit_fingerprint`) and the payload is adopted as the window slice for
exactly that range (:meth:`Recycler.adopt_slice`). A downstream
stage's scan of the output basket then resolves to the upstream emit
payload directly — the stage boundary is a cache hit, not a
re-materialization.

Cached values are shared across factories and must be treated as
immutable — the kernel's operators are pure (they allocate fresh
outputs), which is what makes this safe.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.mal.bat import BAT
from repro.mal.relation import Relation

# key spaces: ("slice", basket, lo, hi) for shared window slices and
# ("ins", fingerprint, ((stream, lo, hi), ...)) for operator results
_SLICE = "slice"
_INS = "ins"

DEFAULT_BUDGET_BYTES = 64 << 20
POLICIES = ("benefit", "lru")

# every N dead-entry eviction scans, halve all reuse counters so stale
# high-benefit entries cannot pin the budget forever (reuse decay)
REUSE_DECAY_SCANS = 32
# stores a fingerprint may accumulate without a single reuse before the
# admission filter stops attempting it (halved back on the decay clock,
# and reset outright when a new standing query registers)
COLD_FP_STORES = 32
# allowance per attempt for the bookkeeping the recycler cannot time
# itself (the caller's key build and call dispatch); the dominant costs
# — probe, store, eviction accounting — are measured live inside
# lookup()/store() and accumulated per fingerprint, so the verdict
# stays calibrated whatever the box's load is doing to wall time
RECYCLE_OVERHEAD_MS = 0.002
# hits must beat the measured bookkeeping by this factor to stay
# admitted: the ledger cannot see the consumer-side register bind or
# the allocator/cache pressure of keeping extra intermediates alive,
# so break-even-on-paper fingerprints are net losses in practice
FP_BENEFIT_MARGIN = 2.0
# resolved entry lifecycles before a fingerprint's cheap verdict is
# trusted
FP_VERDICT_MIN_ENTRIES = 16

# the budget autotuner adapts once per this many cache events
# (evictions + hits): enough activity that the churn/benefit ratio is
# meaningful, small enough to react within a bench run
AUTOTUNE_WINDOW = 256

# consecutive eviction-free windows required before the tuner gives
# memory back; shrinking on the first idle window oscillates (the
# freshly grown budget absorbs the churn, looks idle, shrinks, and
# thrashes again)
AUTOTUNE_SHRINK_WINDOWS = 8


def payload_nbytes(value: Any) -> int:
    """Approximate resident size of a recycled payload."""
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            # object arrays hold pointers; charge a flat per-cell fee
            return int(value.size) * 64 + value.nbytes
        return int(value.nbytes)
    if isinstance(value, BAT):
        return payload_nbytes(value.values)
    if isinstance(value, Relation):
        return sum(payload_nbytes(bat) for _n, bat in value.columns())
    if isinstance(value, tuple):
        return sum(payload_nbytes(v) for v in value)
    return 64  # scalars, None, small bookkeeping


class _Entry:
    __slots__ = ("value", "nbytes", "ranges", "cost_ms", "reuses",
                 "chained")

    def __init__(self, value: Any, nbytes: int,
                 ranges: Tuple[Tuple[str, int, int], ...],
                 cost_ms: float = 0.0, chained: bool = False):
        self.value = value
        self.nbytes = nbytes
        self.ranges = ranges
        self.cost_ms = cost_ms
        self.reuses = 0
        self.chained = chained

    def density(self) -> float:
        """Benefit density: recompute cost × reuse frequency / bytes."""
        return (self.cost_ms * (1.0 + self.reuses)) / max(self.nbytes, 1)


class Recycler:
    """A per-engine cache of shareable streaming intermediates.

    ``policy`` picks the budget-eviction order: ``"benefit"`` (cost ×
    reuses / bytes, recency as tie-breaker) or ``"lru"`` (recency
    only). ``verify=True`` turns on the equivalence mode used by
    tests: the interpreter re-executes every instruction that hits the
    cache and asserts the recycled value matches the freshly computed
    one.
    """

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 enabled: bool = True, verify: bool = False,
                 policy: str = "benefit", min_cost_ms: float = 0.0,
                 autotune: bool = False,
                 autotune_ceiling_bytes: Optional[int] = None):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown recycler policy {policy!r} "
                f"(expected one of {POLICIES})")
        self.budget_bytes = int(budget_bytes)
        self.enabled = enabled
        self.verify = verify
        self.policy = policy
        # budget autotuner (see autotune_tick): the configured budget is
        # the floor (never give back memory the user asked for less of),
        # the ceiling defaults to the stock 64 MB unless the user set a
        # larger budget outright
        self.autotune = bool(autotune)
        self.budget_floor = self.budget_bytes
        self.budget_ceiling = (int(autotune_ceiling_bytes)
                               if autotune_ceiling_bytes
                               else max(self.budget_bytes,
                                        DEFAULT_BUDGET_BYTES))
        self.budget_grows = 0
        self.budget_shrinks = 0
        self.budget_trajectory = [self.budget_bytes]
        self._tune_evictions0 = 0
        self._tune_hits0 = 0
        self._tune_idle_windows = 0
        # admission floor: entries cheaper to recompute than this are
        # never cached (they cost more in budget pressure than they save)
        self.min_cost_ms = float(min_cost_ms)
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        # concurrent factory firings (the scheduler's worker pool)
        # share this cache: every get/put/evict holds the lock so the
        # LRU order, byte accounting and counters stay consistent.
        # Payload materialization happens outside the lock — a racing
        # double-materialize is benign (both values are equal; one
        # wins the put)
        self._mutex = threading.Lock()
        self.bytes_used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.slice_hits = 0
        self.slice_misses = 0
        # benefit accounting: work the cache provably absorbed
        self.bytes_saved = 0
        self.cost_saved_ms = 0.0
        # chained emit payloads adopted / resolved at stage boundaries
        self.chain_stamped = 0
        self.chain_hits = 0
        # admission filter + reuse decay bookkeeping
        self.admission_rejects = 0
        self.reuse_decays = 0
        self._dead_scans = 0
        # cold-fingerprint admission filter: per-fp stores that never
        # saw one reuse; fps past COLD_FP_STORES are skipped entirely
        # (no key build, no lookup, no store) until a decay or a query
        # registration re-probes them. One hit whitelists the fp.
        self._fp_cold_stores: Dict[str, int] = {}
        self._fp_hot: set = set()
        self.cold_skips = 0
        # registration-time census: how many registered consumers carry
        # each instruction fingerprint. Instruction keys embed the
        # firing's window ranges, so reuse can only come from a second
        # consumer with the same fingerprint — a refcount of 1 proves
        # the entry can never be shared, no matter the firing order
        self._fp_refs: Dict[str, int] = {}
        # per-fp net-benefit ledger: [resolved_attempts, saved_ms,
        # resolved_entries]. An entry *resolves* when it leaves the
        # cache (hit-credited earlier, wasted if never reused); only
        # resolved lifecycles count, so a one-sided burst (producer
        # fires all its windows before any consumer runs) cannot form
        # a verdict before sharers had their chance. Once trusted, fps
        # whose hits save less than the bookkeeping overhead are
        # skipped (the cost-model admission half of the tuner)
        self._fp_benefit: Dict[str, List[float]] = {}
        # bumped on every retain/release so factories can cache their
        # per-plan recycling decision until the census changes
        self.census_version = 0
        self.plan_skips = 0
        # why entries left: budget pressure (per policy), vacuumed
        # windows, stream drop
        self.eviction_reasons: Dict[str, int] = {
            "lru": 0, "benefit": 0, "dead": 0, "purge": 0}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    # -- generic entry plumbing ----------------------------------------

    def _get(self, key: tuple) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def _resolve_entry(self, key: tuple, entry: "_Entry") -> None:
        """Close an instruction entry's lifecycle as it leaves the
        cache: its attempts (one store + its reuses) join the fp's
        resolved ledger. Call with the mutex held."""
        if key[0] is not _INS:
            return
        fp = key[1]
        cell = self._fp_benefit.get(fp)
        if cell is None:
            cell = self._fp_benefit[fp] = [0.0, 0.0, 0.0, 0.0]
        cell[0] += 1.0 + entry.reuses
        cell[2] += 1.0
        if cell[2] == FP_VERDICT_MIN_ENTRIES and \
                cell[1] < FP_BENEFIT_MARGIN * (
                    cell[3] + cell[0] * RECYCLE_OVERHEAD_MS):
            # cheap verdict just formed: plan gates must re-evaluate
            self.census_version += 1

    def _account_hit(self, entry: _Entry) -> None:
        entry.reuses += 1
        self.bytes_saved += entry.nbytes
        self.cost_saved_ms += entry.cost_ms
        if entry.chained:
            self.chain_hits += 1

    def _pick_victim(self) -> tuple:
        """Key of the next budget-pressure victim under the policy.

        ``"lru"`` takes the head of the recency order. ``"benefit"``
        scans for the minimum benefit density; iteration follows the
        recency order (LRU first), and a strictly-lower comparison
        keeps the earliest minimum — i.e. LRU breaks density ties.
        """
        if self.policy == "lru":
            return next(iter(self._entries))
        victim_key = None
        victim_density = float("inf")
        for key, entry in self._entries.items():
            density = entry.density()
            if density < victim_density:
                victim_key = key
                victim_density = density
        return victim_key

    def _put(self, key: tuple, value: Any,
             ranges: Tuple[Tuple[str, int, int], ...],
             cost_ms: float = 0.0, chained: bool = False) -> None:
        nbytes = payload_nbytes(value)
        if nbytes > self.budget_bytes:
            return  # larger than the whole cache: not worth keeping
        if self.min_cost_ms > 0.0 and cost_ms < self.min_cost_ms:
            self.admission_rejects += 1
            return  # cheaper to recompute than to cache
        old = self._entries.pop(key, None)
        if old is not None:
            self.bytes_used -= old.nbytes
        self._entries[key] = _Entry(value, nbytes, ranges, cost_ms,
                                    chained)
        self.bytes_used += nbytes
        while self.bytes_used > self.budget_bytes and self._entries:
            victim_key = self._pick_victim()
            victim = self._entries.pop(victim_key)
            self._resolve_entry(victim_key, victim)
            self.bytes_used -= victim.nbytes
            self.evictions += 1
            self.eviction_reasons[self.policy] += 1

    # -- shared window slices ------------------------------------------

    def window_slice(self, basket, lo: Optional[int], hi: Optional[int]
                     ) -> Tuple[Relation, Tuple[int, int]]:
        """The basket window ``[lo, hi)``, materialized at most once.

        Returns ``(relation, (lo, hi))`` with the bounds clamped to the
        basket's live oid range — the clamped range is the cache key,
        so every factory asking for the same window (however phrased)
        shares one Relation object.
        """
        lo, hi = basket.clamp_range(lo, hi)
        if not self.enabled:
            return basket.relation(lo, hi), (lo, hi)
        key = (_SLICE, basket.name, lo, hi)
        with self._mutex:
            entry = self._get(key)
            if entry is not None:
                self.slice_hits += 1
                self._account_hit(entry)
                return entry.value, (lo, hi)
            self.slice_misses += 1
        started = time.perf_counter()
        rel = basket.relation(lo, hi)
        cost_ms = (time.perf_counter() - started) * 1000.0
        with self._mutex:
            self._put(key, rel, ((basket.name, lo, hi),), cost_ms)
        return rel, (lo, hi)

    def adopt_slice(self, basket_name: str, lo: int, hi: int,
                    rel: Relation, fp: str,
                    cost_ms: float = 0.0) -> None:
        """Adopt a chained emit payload as the slice for ``[lo, hi)``.

        Called by a :class:`~repro.core.emitter.BasketSink` right after
        it appended *rel* to output basket *basket_name* at that oid
        range, with *fp* the producing plan's emit fingerprint
        (provenance; the basket records it per range) and *cost_ms*
        the upstream firing's evaluation wall time — what the entry
        saves a downstream stage from paying again. A later
        :meth:`window_slice` for exactly that range then returns the
        emitted payload without re-materializing the basket window.
        """
        if not self.enabled or hi <= lo:
            return
        key = (_SLICE, basket_name.lower(), lo, hi)
        with self._mutex:
            self._put(key, rel, ((basket_name.lower(), lo, hi),),
                      cost_ms, chained=True)
            self.chain_stamped += 1

    # -- instruction intermediates -------------------------------------

    @staticmethod
    def instruction_key(fp: str,
                        ranges: Iterable[Tuple[str, int, int]]) -> tuple:
        return (_INS, fp, tuple(sorted(ranges)))

    def lookup(self, key: tuple) -> Tuple[bool, Any]:
        """``(found, value)`` for an instruction-intermediate key.

        The probe's own wall time is charged to the fingerprint's
        overhead ledger — measured, not estimated, so the net-benefit
        verdict compares like with like on a loaded box."""
        if not self.enabled:
            return False, None
        started = time.perf_counter()
        with self._mutex:
            entry = self._get(key)
            fp = key[1]
            cell = self._fp_benefit.get(fp)
            if cell is None:
                cell = self._fp_benefit[fp] = [0.0, 0.0, 0.0, 0.0]
            if entry is None:
                self.misses += 1
                cell[3] += (time.perf_counter() - started) * 1000.0
                return False, None
            self.hits += 1
            if fp not in self._fp_hot:
                self._fp_hot.add(fp)
                self._fp_cold_stores.pop(fp, None)
            cell[1] += entry.cost_ms
            self._account_hit(entry)
            cell[3] += (time.perf_counter() - started) * 1000.0
            return True, entry.value

    def retain_fps(self, fps: Iterable[str]) -> None:
        """Register a consumer's recyclable instruction fingerprints
        (called once per standing-query registration). Duplicate
        fingerprints within one plan count individually — the second
        occurrence can hit the first occurrence's store within one
        firing."""
        with self._mutex:
            for fp in fps:
                self._fp_refs[fp] = self._fp_refs.get(fp, 0) + 1
            self._fp_cold_stores.clear()
            # a new consumer changes every fingerprint's sharing
            # economics: all net-benefit verdicts restart from scratch
            self._fp_benefit.clear()
            self.census_version += 1

    def release_fps(self, fps: Iterable[str]) -> None:
        """Drop a removed consumer's fingerprints from the census."""
        with self._mutex:
            for fp in fps:
                n = self._fp_refs.get(fp, 0)
                if n <= 1:
                    self._fp_refs.pop(fp, None)
                else:
                    self._fp_refs[fp] = n - 1
            self._fp_benefit.clear()
            self.census_version += 1

    def plan_should_recycle(self, fps: Iterable[str]) -> bool:
        """One whole-plan admission decision per firing.

        False only when the census covers *every* fingerprint of the
        plan and none is shared (or whitelisted hot) — the factory then
        runs the bare thunk loop with zero per-step recycler calls.
        Factories cache the answer keyed on :attr:`census_version`, so
        the steady-state cost of a non-sharing plan is one integer
        compare per firing."""
        refs = self._fp_refs
        if not refs:
            return True
        hot = self._fp_hot
        decided_all = True
        for fp in fps:
            n = refs.get(fp)
            if n is None:
                if fp in hot:
                    return True
                decided_all = False
                continue
            if n >= 2 and self._fp_worthwhile(fp):
                return True
        if decided_all:
            self.plan_skips += 1
            return False
        return True

    def _fp_worthwhile(self, fp: str) -> bool:
        """Net-benefit verdict: False once a trusted sample shows the
        fingerprint's hits save less than the bookkeeping costs."""
        cell = self._fp_benefit.get(fp)
        return (cell is None or cell[2] < FP_VERDICT_MIN_ENTRIES
                or cell[1] >= FP_BENEFIT_MARGIN * (
                    cell[3] + cell[0] * RECYCLE_OVERHEAD_MS))

    def should_attempt(self, fp: str) -> bool:
        """Admission check for one recyclable instruction.

        Instruction keys embed the firing's window ranges, so an entry
        can only ever be reused by a *second* consumer carrying the
        same fingerprint. With a registration census (engine paths)
        the sharing check is exact — attempt only fingerprints at
        least two registered consumers carry — and the net-benefit
        ledger then retires fingerprints whose hits demonstrably save
        less than the bookkeeping overhead. Without a census (bare
        recyclers) fall back to counting stores-without-reuse, cut off
        at :data:`COLD_FP_STORES`, where one observed hit whitelists
        the fingerprint. Either way workloads that cannot profit stop
        paying key-build/lookup/store/eviction overhead — what keeps
        recycler-on from running slower than recycler-off. Reads are
        lock-free (racing updates only delay a cutover by a store or
        two).
        """
        refs = self._fp_refs.get(fp)
        if refs is not None:
            if refs >= 2 and self._fp_worthwhile(fp):
                return True
            self.cold_skips += 1
            return False
        if fp in self._fp_hot:
            return True
        if self._fp_cold_stores.get(fp, 0) < COLD_FP_STORES:
            return True
        self.cold_skips += 1
        return False

    def attempt_mode(self, fp: str) -> int:
        """Snapshot of :meth:`should_attempt` for censused
        fingerprints, so compiled factories can bake a per-step
        execution mask once per :attr:`census_version` instead of
        consulting the recycler on every firing.

        Returns ``1`` (attempt recycling), ``0`` (run the bare thunk —
        unshared or retired by the net-benefit ledger), or ``2``
        (uncensused: the cold-store cutoff moves without bumping
        ``census_version``, so the caller must keep calling
        :meth:`should_attempt` per firing). Every decision that flips
        a ``0``/``1`` answer for a censused fingerprint — retain,
        release, ledger verdicts, decay — bumps ``census_version``,
        which is what makes the snapshot sound."""
        refs = self._fp_refs.get(fp)
        if refs is None:
            return 2
        if refs >= 2 and self._fp_worthwhile(fp):
            return 1
        self.cold_skips += 1
        return 0

    def reset_cold(self) -> None:
        """Forget store-count cold verdicts (a new standing query may
        share fingerprints that had no sharers before)."""
        with self._mutex:
            self._fp_cold_stores.clear()

    def store(self, key: tuple, value: Any,
              cost_ms: float = 0.0) -> None:
        """Publish an instruction result; *cost_ms* is the evaluation
        wall time the interpreter measured for it (the recompute cost
        the benefit-density policy weighs)."""
        if not self.enabled:
            return
        started = time.perf_counter()
        with self._mutex:
            self._put(key, value, key[2], cost_ms)
            fp = key[1]
            if fp not in self._fp_hot:
                self._fp_cold_stores[fp] = \
                    self._fp_cold_stores.get(fp, 0) + 1
            cell = self._fp_benefit.get(fp)
            if cell is None:
                cell = self._fp_benefit[fp] = [0.0, 0.0, 0.0, 0.0]
            cell[3] += (time.perf_counter() - started) * 1000.0

    # -- budget autotuning ----------------------------------------------

    def autotune_tick(self) -> None:
        """Adapt ``budget_bytes`` from observed churn vs. benefit.

        Called by the scheduler once per net evaluation. Every
        :data:`AUTOTUNE_WINDOW` cache events (evictions + hits) it
        weighs churn against benefit: when evictions make up a quarter
        or more of the window — or outnumber hits outright — the budget
        is thrashing (entries are pushed out before they can repay
        their ``cost_ms``, and every overflow pays an O(entries)
        victim scan) so the budget doubles toward the ceiling; when a
        window passes with zero evictions and the cache is using under
        a quarter of its budget, the budget halves back toward the
        configured floor. Decisions are counter-based and therefore
        deterministic for a given event sequence; the floor/ceiling
        bracket makes the tuner safe by construction (it can never
        shrink below what the user configured). This is what closes the
        "recycler-on must never be slower than recycler-off" bar: the
        pathological small-budget regime (e.g. 8 KB with thousands of
        evictions per second) tunes itself out within a few windows.
        """
        if not self.autotune or not self.enabled:
            return
        with self._mutex:
            evictions = self.evictions - self._tune_evictions0
            hits = (self.hits + self.slice_hits) - self._tune_hits0
            if evictions + hits < AUTOTUNE_WINDOW:
                return
            self._tune_evictions0 = self.evictions
            self._tune_hits0 = self.hits + self.slice_hits
            thrashing = (evictions > hits
                         or evictions * 4 >= AUTOTUNE_WINDOW)
            if thrashing and self.budget_bytes < self.budget_ceiling:
                self._tune_idle_windows = 0
                self.budget_bytes = min(self.budget_ceiling,
                                        self.budget_bytes * 2)
                self.budget_grows += 1
            elif (evictions == 0
                  and self.budget_bytes > self.budget_floor
                  and self.bytes_used * 4 <= self.budget_bytes):
                self._tune_idle_windows += 1
                if self._tune_idle_windows < AUTOTUNE_SHRINK_WINDOWS:
                    return
                self._tune_idle_windows = 0
                self.budget_bytes = max(self.budget_floor,
                                        self.budget_bytes // 2)
                self.budget_shrinks += 1
            else:
                self._tune_idle_windows = 0
                return
            if len(self.budget_trajectory) < 256:
                self.budget_trajectory.append(self.budget_bytes)

    # -- invalidation ---------------------------------------------------

    def evict_dead(self, floors: Dict[str, int]) -> int:
        """Drop entries whose windows are entirely below the vacuumed
        ``first_oid`` of their basket (they can never be requested
        again). *floors* maps basket name -> current first_oid.

        Doubles as the reuse-decay clock: every
        :data:`REUSE_DECAY_SCANS` scans, all reuse counters are halved
        so an entry that was hot long ago decays back toward its base
        benefit density instead of pinning the budget forever."""
        with self._mutex:
            self._dead_scans += 1
            if self._dead_scans % REUSE_DECAY_SCANS == 0:
                for entry in self._entries.values():
                    entry.reuses >>= 1
                for fp in list(self._fp_cold_stores):
                    self._fp_cold_stores[fp] >>= 1
                # decay magnitudes but not the trust count (cell[2]):
                # halving it below FP_VERDICT_MIN_ENTRIES would re-open
                # probation on a timer, and one slow-accruing
                # fingerprint in probation holds its whole plan gate
                # open; verdicts instead reset on structural change
                # (retain_fps/release_fps, when the sharing economics
                # actually move)
                for cell in self._fp_benefit.values():
                    cell[0] /= 2.0
                    cell[1] /= 2.0
                    cell[3] /= 2.0
                self.census_version += 1
                self.reuse_decays += 1
            if not self._entries:
                return 0
            dead = []
            for key, entry in self._entries.items():
                ranges = entry.ranges
                if not ranges:
                    continue
                gone = True
                for name, _lo, hi in ranges:
                    floor = floors.get(name)
                    if floor is None or hi > floor:
                        gone = False
                        break
                if gone:
                    dead.append(key)
            for key in dead:
                entry = self._entries.pop(key)
                self._resolve_entry(key, entry)
                self.bytes_used -= entry.nbytes
                self.invalidations += 1
                self.eviction_reasons["dead"] += 1
            return len(dead)

    def purge_basket(self, basket_name: str) -> int:
        """Drop every entry touching *basket_name* (stream dropped or
        re-created: its oid sequence restarts, so keyed ranges would
        alias)."""
        basket_name = basket_name.lower()
        with self._mutex:
            dead = [key for key, entry in self._entries.items()
                    if any(name == basket_name for name, _l, _h in
                           entry.ranges)]
            for key in dead:
                entry = self._entries.pop(key)
                self.bytes_used -= entry.nbytes
                self.invalidations += 1
                self.eviction_reasons["purge"] += 1
            return len(dead)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self.bytes_used = 0

    # -- reporting -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._mutex:
            return {
                "enabled": int(self.enabled),
                "policy": self.policy,
                "entries": len(self._entries),
                "bytes": self.bytes_used,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "slice_hits": self.slice_hits,
                "slice_misses": self.slice_misses,
                "chain_stamped": self.chain_stamped,
                "chain_hits": self.chain_hits,
                "min_cost_ms": self.min_cost_ms,
                "admission_rejects": self.admission_rejects,
                "reuse_decays": self.reuse_decays,
                "cold_skips": self.cold_skips,
                "plan_skips": self.plan_skips,
                "cold_fps": (sum(
                    1 for v in self._fp_refs.values() if v < 2)
                    + sum(1 for v in self._fp_cold_stores.values()
                          if v >= COLD_FP_STORES)),
                "bytes_saved": self.bytes_saved,
                "cost_saved_ms": round(self.cost_saved_ms, 3),
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "eviction_reasons": dict(self.eviction_reasons),
                "autotune": int(self.autotune),
                "budget_floor": self.budget_floor,
                "budget_ceiling": self.budget_ceiling,
                "budget_grows": self.budget_grows,
                "budget_shrinks": self.budget_shrinks,
                "budget_trajectory": list(self.budget_trajectory),
            }

    def __repr__(self) -> str:
        return (f"Recycler(policy={self.policy}, "
                f"entries={len(self._entries)}, "
                f"bytes={self.bytes_used}, hits={self.hits}, "
                f"misses={self.misses})")


def payloads_equal(a: Any, b: Any) -> bool:
    """Deep equality between a recycled payload and a fresh one (the
    equivalence/verify mode's comparator)."""
    if type(a) is not type(b):
        # allow int/float scalar identity across numpy/python boxing
        if isinstance(a, (int, float, np.integer, np.floating)) and \
                isinstance(b, (int, float, np.integer, np.floating)):
            return bool(a == b) or (a != a and b != b)
        return False
    if isinstance(a, np.ndarray):
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        if a.dtype == object:
            return all(x == y or (x is None and y is None)
                       for x, y in zip(a, b))
        if a.dtype.kind == "f":
            return bool(np.array_equal(a, b, equal_nan=True))
        return bool(np.array_equal(a, b))
    if isinstance(a, BAT):
        return a.dtype == b.dtype and payloads_equal(a.values, b.values)
    if isinstance(a, Relation):
        if a.names != b.names:
            return False
        return all(payloads_equal(a.column(n), b.column(n))
                   for n in a.names)
    if isinstance(a, tuple):
        return len(a) == len(b) and all(
            payloads_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            payloads_equal(a[k], b[k]) for k in a)
    if isinstance(a, float):
        return a == b or (a != a and b != b)
    return bool(a == b)
