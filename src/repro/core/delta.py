"""Z-set delta execution: O(Δ) sliding windows with retractions.

Incremental mode (:mod:`repro.core.incremental`) re-merges every cached
basic-window partial on each slide — O(window/slide) merge work per
firing. This module generalizes it to DBSP-style **Z-sets**: a window
change is a relation plus an integer weight column (+1 insert, −1
retraction, ±k after consolidation), and each operator is lifted to a
*delta form* that holds running state and consumes only the change:

* ``delta_select`` / ``delta_project`` — stateless; the per-slice
  pipeline runs unmodified over the delta rows and weights pass through;
* ``delta_group_aggregate`` — :class:`DeltaAggregator` keeps per-group
  running states merged by signed weight (count/sum/avg and the
  (n, Σx, Σx²) moments of stddev/variance cancel exactly; min/max keep a
  per-group multiset bag and rescan it only when the current extreme is
  retracted);
* ``delta_join`` — per-side chunked state with a hash index
  (:class:`_JoinSideState`); a firing computes ΔL⋈R_old + L_new⋈ΔR,
  which covers the Δ⋈Δ cross term exactly once.

Retractions come from the window itself: :meth:`WindowState.
delta_bounds` names the oid range that left the window, and because the
basket only releases tuples *after* the firing that retires them, the
expiry slice is still readable — re-running the deterministic per-slice
pipeline over it reproduces the exact rows to retract. No shadow copy of
window contents is kept for aggregates; chunk stores exist only where
the emission itself is the window content (projection-only queries and
join sides).

Unlike incremental mode, delta execution does not need ``size % slide
== 0``: expiry ranges are arbitrary oid spans, so windows like
``[RANGE 10 SLIDE 3]`` run in O(Δ) too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import StreamError
from repro.mal import kernel
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.sql.plan import AggregateNode, PlanNode
from repro.storage import types as dt
from repro.core.incremental import (IncrementalAnalysis, PartialAggregator,
                                    apply_upper, run_pipeline)

Reader = Callable[[str, int, int], Relation]


class StreamDelta:
    """One stream's change for one firing: oid ranges plus split hints.

    ``window`` — the full [lo, hi) range the firing represents;
    ``arrive`` — rows entering the window (weight +1);
    ``expire`` — rows leaving it (weight −1);
    ``splits`` — oids at which future window los will fall inside the
    arrival range; chunked state splits there so later expiries align
    with chunk boundaries instead of forcing straddle recomputes.
    """

    __slots__ = ("window", "arrive", "expire", "splits")

    def __init__(self, window: Tuple[int, int], arrive: Tuple[int, int],
                 expire: Tuple[int, int], splits: Sequence[int] = ()):
        self.window = window
        self.arrive = arrive
        self.expire = expire
        self.splits = splits


def _split_ranges(span: Tuple[int, int],
                  splits: Sequence[int]) -> List[Tuple[int, int]]:
    lo, hi = span
    if hi <= lo:
        return []
    cuts = [lo] + [s for s in splits if lo < s < hi] + [hi]
    return list(zip(cuts, cuts[1:]))


# ---------------------------------------------------------------------
# delta_group_aggregate
# ---------------------------------------------------------------------

class _ExtremeBag:
    """Signed multiset of one group's min/max candidates.

    Inserts update the cached extreme in O(1). Retracting the current
    extreme marks the bag dirty; the next :meth:`current` rescans the
    surviving values — the fallback the exact-cancellation states don't
    need. Weights may transiently dip negative inside one firing (the
    join's +1/−1 cross terms interleave); the dirty flag still fires
    when such a value returns to zero, so the cache never goes stale.
    """

    __slots__ = ("take_min", "counts", "extreme", "dirty", "_rescans")

    def __init__(self, take_min: bool, rescan_counter: List[int]):
        self.take_min = take_min
        self.counts: Dict[Any, int] = {}
        self.extreme: Any = None
        self.dirty = False
        self._rescans = rescan_counter

    def add(self, value: Any, weight: int) -> None:
        c = self.counts.get(value, 0) + weight
        if c:
            self.counts[value] = c
            if not self.dirty and c > 0 and (
                    self.extreme is None
                    or (value < self.extreme if self.take_min
                        else value > self.extreme)):
                self.extreme = value
        else:
            self.counts.pop(value, None)
            if value == self.extreme:
                self.dirty = True

    def current(self) -> Any:
        if self.dirty:
            live = [v for v, c in self.counts.items() if c > 0]
            if live:
                self.extreme = min(live) if self.take_min else max(live)
            else:
                self.extreme = None
            self.dirty = False
            self._rescans[0] += 1
        return self.extreme


class DeltaAggregator:
    """Per-group running aggregate states updated by signed Z-set merges.

    The state is columnar, mirroring the engine's BAT layout: one slot
    per live group across numpy arrays — presence (the group's live
    multiplicity, Σ weights) plus per-aggregate columns (count, sum
    pairs, moment triples). A firing's merge is then a handful of
    fancy-indexed ``+=`` over the touched slots instead of a Python
    loop over per-group tuples; only min/max bags stay per-group
    objects. A group is freed the moment its presence reaches zero, so
    finalization sees exactly the groups a from-scratch evaluation
    would (freeing also resets any float residue the cancelled weights
    left behind). Finalization reuses :class:`PartialAggregator`'s
    state format and nil/empty semantics.
    """

    _GROW = 256

    def __init__(self, node: AggregateNode):
        self.node = node
        self._final = PartialAggregator(node)
        self._rescans = [0]
        self._key_slots: Dict[Tuple, int] = {}
        self._free: List[int] = []
        self._high = 0            # high-water slot
        self._cap = 0
        self._presence = np.empty(0, dtype=np.int64)
        self._cols: List[Any] = [self._empty_col(agg.op)
                                 for agg in node.aggs]

    @property
    def rescans(self) -> int:
        return self._rescans[0]

    def group_count(self) -> int:
        return len(self._key_slots)

    def state_nbytes(self) -> int:
        total = self._presence.nbytes
        for agg, col in zip(self.node.aggs, self._cols):
            if agg.op in ("min", "max"):
                total += sum(len(bag.counts) * 64
                             for bag in col if bag is not None)
            elif agg.op == "count":
                total += col.nbytes
            else:
                total += sum(part.nbytes for part in col)
        return total

    @staticmethod
    def _empty_col(op: str) -> Any:
        if op == "count":
            return np.empty(0, dtype=np.int64)
        if op in ("sum", "avg"):
            return [np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int64)]
        if op in ("stddev", "variance"):
            return [np.empty(0, dtype=np.float64) for _ in range(3)]
        return []  # min/max: one _ExtremeBag per slot

    def _grow(self, need: int) -> None:
        cap = max(self._cap * 2, self._GROW)
        while cap < need:
            cap *= 2
        pad = cap - self._cap
        self._presence = np.concatenate(
            [self._presence, np.zeros(pad, dtype=np.int64)])
        for i, agg in enumerate(self.node.aggs):
            col = self._cols[i]
            if agg.op in ("min", "max"):
                col.extend(None for _ in range(pad))
            elif agg.op == "count":
                self._cols[i] = np.concatenate(
                    [col, np.zeros(pad, dtype=np.int64)])
            else:
                self._cols[i] = [np.concatenate(
                    [part, np.zeros(pad, dtype=part.dtype)])
                    for part in col]
        self._cap = cap

    def _slot(self, key: Tuple) -> int:
        slot = self._key_slots.get(key)
        if slot is not None:
            return slot
        if self._free:
            slot = self._free.pop()
        else:
            if self._high >= self._cap:
                self._grow(self._high + 1)
            slot = self._high
            self._high += 1
        self._key_slots[key] = slot
        # a recycled slot may hold a dead group's residue: reset it
        self._presence[slot] = 0
        for agg, col in zip(self.node.aggs, self._cols):
            if agg.op in ("min", "max"):
                col[slot] = _ExtremeBag(agg.op == "min", self._rescans)
            elif agg.op == "count":
                col[slot] = 0
            else:
                for part in col:
                    part[slot] = 0
        return slot

    def apply(self, rel: Relation, weights: np.ndarray) -> None:
        """Merge one weighted relation into the running states."""
        node = self.node
        n = rel.row_count
        if n == 0:
            return
        w = np.asarray(weights, dtype=np.int64)
        if node.group_exprs:
            gids: Optional[np.ndarray] = None
            reps = None
            ngroups = 0
            group_bats = [e.evaluate(rel) for e in node.group_exprs]
            for bat in group_bats:
                gids, reps, ngroups = kernel.subgroup(bat, gids)
            keys = list(zip(*(b.take(reps).tolist()
                              for b in group_bats))) if ngroups else []
        else:
            gids = np.zeros(n, dtype=np.int64)
            ngroups = 1
            keys = [()]
        presence = kernel.weighted_count(gids, w, ngroups)
        deltas = [self._delta(agg, rel, gids, w, ngroups)
                  for agg in node.aggs]
        # local group g -> global slot; slots are unique within one
        # apply, so the fancy-indexed += below never collide
        slots = np.fromiter((self._slot(key) for key in keys),
                            dtype=np.int64, count=ngroups)
        self._presence[slots] += presence
        for i, agg in enumerate(node.aggs):
            op = agg.op
            d = deltas[i]
            col = self._cols[i]
            if op == "count":
                col[slots] += d
            elif op in ("sum", "avg"):
                col[0][slots] += d[0]
                col[1][slots] += d[1]
            elif op in ("stddev", "variance"):
                col[0][slots] += d[0]
                col[1][slots] += d[1]
                col[2][slots] += d[2]
            else:
                for g, updates in d.items():
                    bag = col[slots[g]]
                    for v, wv in updates:
                        bag.add(v, wv)
        if node.group_exprs:
            for g in np.nonzero(self._presence[slots] == 0)[0].tolist():
                slot = int(slots[g])
                del self._key_slots[keys[g]]
                self._free.append(slot)

    @staticmethod
    def _delta(agg, rel: Relation, gids: np.ndarray, w: np.ndarray,
               ngroups: int):
        """Per-group signed contribution of one weighted relation."""
        if agg.op == "count" and agg.arg is None:
            return kernel.weighted_count(gids, w, ngroups)
        arg = agg.arg.evaluate(rel)
        if agg.op == "count":
            valid = ~arg.nil_mask()
            return kernel.weighted_count(gids[valid], w[valid], ngroups)
        if agg.op in ("sum", "avg"):
            return kernel.weighted_sum(arg, gids, w, ngroups)
        if agg.op in ("stddev", "variance"):
            return kernel.weighted_moments(arg, gids, w, ngroups)
        # min / max: per-group (value, weight) multiset updates
        valid = ~arg.nil_mask()
        vals = arg.tolist()
        wl = w.tolist()
        updates: Dict[int, List[Tuple[Any, int]]] = {}
        for i in np.nonzero(valid)[0].tolist():
            updates.setdefault(int(gids[i]), []).append((vals[i], wl[i]))
        return updates

    def finalize(self) -> Relation:
        """Window result straight from the columnar state.

        Final values are computed as array expressions over the live
        slots with storage-form nils (INT_NIL / NaN), matching
        :meth:`PartialAggregator._final_value` per element; only
        min/max bags and the group-key columns go through Python.
        """
        node = self.node
        if node.group_exprs:
            items = [(key, slot)
                     for key, slot in self._key_slots.items()
                     if self._presence[slot] > 0]
            if not items:
                return Relation.empty(node.schema)
            keys = [key for key, _slot in items]
            slots = np.fromiter((slot for _key, slot in items),
                                dtype=np.int64, count=len(items))
        else:
            if not self._key_slots:
                # canonical empty-window scalar row (count 0, nils)
                return self._final.finalize({})
            keys = [()]
            slots = np.fromiter(self._key_slots.values(),
                                dtype=np.int64, count=1)
        out = Relation()
        for i, (name, expr) in enumerate(zip(node.group_names,
                                             node.group_exprs)):
            out.add(name, BAT.from_values(expr.dtype,
                                          [k[i] for k in keys],
                                          coerce=True))
        for name, agg, col in zip(node.agg_names, node.aggs,
                                  self._cols):
            out.add(name, self._final_col(agg, col, slots))
        return out

    def _final_col(self, agg, col, slots: np.ndarray) -> BAT:
        op = agg.op
        if op == "count":
            return BAT.from_array(agg.dtype, col[slots])
        if op in ("min", "max"):
            return BAT.from_values(
                agg.dtype, [col[s].current() for s in slots.tolist()],
                coerce=True)
        if op in ("sum", "avg"):
            sums = col[0][slots]
            counts = col[1][slots]
            empty = counts == 0
            if op == "sum" and agg.dtype is dt.INT:
                # weighted int sums live in float64 but are exactly
                # integral; store them back as int
                vals = np.rint(sums).astype(np.int64)
                vals[empty] = dt.INT_NIL
                return BAT.from_array(agg.dtype, vals)
            vals = sums if op == "sum" else \
                sums / np.maximum(counts, 1)
            vals = vals.astype(np.float64)
            vals[empty] = dt.FLOAT_NIL
            return BAT.from_array(agg.dtype, vals)
        # stddev / variance from the (n, Σx, Σx²) moment columns
        n = col[0][slots]
        s = col[1][slots]
        ss = col[2][slots]
        denom = np.maximum(n, 2.0)
        var = (ss - s * s / denom) / (denom - 1.0)
        np.maximum(var, 0.0, out=var)  # clamp rounding residue
        if op == "stddev":
            var = np.sqrt(var)
        var[n < 2.0] = dt.FLOAT_NIL
        return BAT.from_array(agg.dtype, var)


# ---------------------------------------------------------------------
# chunked window-content state (projection-only emission, join sides)
# ---------------------------------------------------------------------

class _Chunk:
    __slots__ = ("lo", "hi", "rel", "rows", "keys")

    def __init__(self, lo: int, hi: int, rel: Relation):
        self.lo = lo
        self.hi = hi
        self.rel = rel
        self.rows: Optional[List[tuple]] = None
        self.keys: Optional[List[Any]] = None


class _ChunkStore:
    """Pipeline outputs of the live window, keyed by input oid range.

    ``advance_floor`` drops chunks wholly below the new window lo and
    replaces a straddling head chunk by recomputing its surviving part
    (the basket still holds those rows). With split hints aligned to
    slide boundaries, straddles never happen for tuple windows.
    """

    def __init__(self):
        self.chunks: List[_Chunk] = []

    def append(self, lo: int, hi: int, rel: Relation) -> None:
        self.chunks.append(_Chunk(lo, hi, rel))

    def advance_floor(self, floor: int,
                      recompute: Callable[[int, int], Relation]
                      ) -> List[Relation]:
        dropped: List[Relation] = []
        while self.chunks and self.chunks[0].hi <= floor:
            dropped.append(self.chunks.pop(0).rel)
        if self.chunks and self.chunks[0].lo < floor:
            head = self.chunks.pop(0)
            dropped.append(recompute(head.lo, floor))
            self.chunks.insert(
                0, _Chunk(floor, head.hi, recompute(floor, head.hi)))
        return dropped

    def concat(self, schema) -> Relation:
        live = [c.rel for c in self.chunks if c.rel.row_count]
        if not live:
            return Relation.empty(schema)
        out = live[0]
        for piece in live[1:]:
            out = out.concat(piece)
        return out

    def row_total(self) -> int:
        return sum(c.rel.row_count for c in self.chunks)

    def nbytes(self) -> int:
        from repro.core.recycler import payload_nbytes
        return sum(payload_nbytes(c.rel) for c in self.chunks)


class _JoinSideState:
    """One join side's live pipeline output plus a persistent hash index.

    The index maps join-key value → {chunk id → row positions}, so a
    delta from the other side probes only matching rows instead of
    re-joining windows. ``key_expr`` of None (cross product) disables
    the index; probes then return every live row.
    """

    def __init__(self, key_expr):
        self.key_expr = key_expr
        self.chunks: Dict[int, _Chunk] = {}
        self._next_cid = 0
        self.index: Dict[Any, Dict[int, List[int]]] = {}

    def append(self, lo: int, hi: int, rel: Relation) -> None:
        cid = self._next_cid
        self._next_cid += 1
        ch = _Chunk(lo, hi, rel)
        ch.rows = rel.to_rows()
        if self.key_expr is not None and rel.row_count:
            ch.keys = self.key_expr.evaluate(rel).tolist()
        else:
            ch.keys = []
        self.chunks[cid] = ch
        for pos, k in enumerate(ch.keys):
            if k is None:
                continue
            self.index.setdefault(k, {}).setdefault(cid, []).append(pos)

    def _remove(self, cid: int) -> _Chunk:
        ch = self.chunks.pop(cid)
        for k in set(ch.keys or ()):
            if k is None:
                continue
            postings = self.index.get(k)
            if postings is not None:
                postings.pop(cid, None)
                if not postings:
                    del self.index[k]
        return ch

    def advance_floor(self, floor: int,
                      recompute: Callable[[int, int], Relation]
                      ) -> List[Relation]:
        dropped: List[Relation] = []
        straddle = None
        for cid in list(self.chunks):
            ch = self.chunks[cid]
            if ch.hi <= floor:
                dropped.append(self._remove(cid).rel)
            elif ch.lo < floor:
                straddle = cid
        if straddle is not None:
            ch = self._remove(straddle)
            dropped.append(recompute(ch.lo, floor))
            self.append(floor, ch.hi, recompute(floor, ch.hi))
        return dropped

    def probe(self, key) -> List[tuple]:
        postings = self.index.get(key)
        if not postings:
            return []
        out: List[tuple] = []
        for cid, positions in postings.items():
            rows = self.chunks[cid].rows
            out.extend(rows[p] for p in positions)
        return out

    def all_rows(self) -> List[tuple]:
        out: List[tuple] = []
        for ch in self.chunks.values():
            out.extend(ch.rows or ())
        return out

    def row_total(self) -> int:
        return sum(c.rel.row_count for c in self.chunks.values())

    def nbytes(self) -> int:
        from repro.core.recycler import payload_nbytes
        total = sum(payload_nbytes(c.rel) for c in self.chunks.values())
        return total * 2 + len(self.index) * 64  # row cache + index


class _OutputZSet:
    """Consolidated output weights for non-aggregate join emission."""

    def __init__(self, schema):
        self.schema = schema
        self.weights: Dict[tuple, int] = {}

    def apply(self, rel: Relation, weights: np.ndarray) -> None:
        for row, w in zip(rel.to_rows(), weights.tolist()):
            nw = self.weights.get(row, 0) + w
            if nw:
                self.weights[row] = nw
            else:
                self.weights.pop(row, None)

    def materialize(self) -> Relation:
        rows: List[tuple] = []
        for row, w in self.weights.items():
            if w < 0:
                raise StreamError(
                    "negative multiplicity in output z-set "
                    "(delta bookkeeping bug)")
            rows.extend([row] * w)
        if not rows:
            return Relation.empty(self.schema)
        return Relation.from_rows(self.schema, rows)

    def row_total(self) -> int:
        return sum(w for w in self.weights.values() if w > 0)

    def nbytes(self) -> int:
        return len(self.weights) * 128


# ---------------------------------------------------------------------
# the delta executor
# ---------------------------------------------------------------------

class DeltaExecutor:
    """Holds operator state across firings and consumes window deltas.

    Shapes follow :class:`IncrementalAnalysis`: a single windowed stream
    (optionally aggregated) or an equi-join of two windowed streams.
    Per firing cost is proportional to the delta — arrival plus expiry
    rows — not to the window.
    """

    def __init__(self, analysis: IncrementalAnalysis, catalog):
        self.analysis = analysis
        self.catalog = catalog
        self.aggregator = DeltaAggregator(analysis.agg) \
            if analysis.agg is not None else None
        self._store: Optional[_ChunkStore] = None
        self._sides: Optional[Dict[str, _JoinSideState]] = None
        self._out: Optional[_OutputZSet] = None
        if analysis.kind == "single":
            if self.aggregator is None:
                self._store = _ChunkStore()
        else:
            join = analysis.join_node
            self._sides = {
                analysis.left_stream: _JoinSideState(join.left_key),
                analysis.right_stream: _JoinSideState(join.right_key),
            }
            if self.aggregator is None:
                self._out = _OutputZSet(join.schema)
        self.delta_rows_in = 0
        self.delta_rows_out = 0
        self.consolidations = 0

    # -- firing -----------------------------------------------------------

    def fire(self, deltas: Dict[str, StreamDelta],
             reader: Reader) -> Relation:
        if self.analysis.kind == "single":
            rel = self._fire_single(deltas, reader)
        else:
            rel = self._fire_join2(deltas, reader)
        return apply_upper(rel, self.analysis.upper)

    def _pipe(self, pipeline: PlanNode, stream: str, reader: Reader,
              lo: int, hi: int) -> Relation:
        slice_rel = reader(stream, lo, hi)
        self.delta_rows_in += slice_rel.row_count
        return run_pipeline(self.catalog, pipeline, stream, slice_rel)

    def _fire_single(self, deltas: Dict[str, StreamDelta],
                     reader: Reader) -> Relation:
        a = self.analysis
        stream = a.stream_scans[0].stream_name
        d = deltas[stream]

        def pipe(lo: int, hi: int) -> Relation:
            return self._pipe(a.pipeline, stream, reader, lo, hi)

        if self.aggregator is not None:
            alo, ahi = d.arrive
            if ahi > alo:
                out = pipe(alo, ahi)
                if out.row_count:
                    self.aggregator.apply(
                        out, np.ones(out.row_count, dtype=np.int64))
                    self.delta_rows_out += out.row_count
            elo, ehi = d.expire
            if ehi > elo:
                # the expiry slice is still basket-live: re-running the
                # deterministic pipeline over it yields the exact
                # retraction payload, no shadow copy needed
                out = pipe(elo, ehi)
                if out.row_count:
                    self.aggregator.apply(
                        out, np.full(out.row_count, -1, dtype=np.int64))
                    self.delta_rows_out += out.row_count
            return self.aggregator.finalize()
        store = self._store
        store.advance_floor(d.window[0], pipe)
        for slo, shi in _split_ranges(d.arrive, d.splits):
            out = pipe(slo, shi)
            store.append(slo, shi, out)
            self.delta_rows_out += out.row_count
        return store.concat(a.pipeline.schema)

    def _fire_join2(self, deltas: Dict[str, StreamDelta],
                    reader: Reader) -> Relation:
        a = self.analysis
        ls, rs = a.left_stream, a.right_stream
        ld, rd = deltas[ls], deltas[rs]
        lside, rside = self._sides[ls], self._sides[rs]

        def lpipe(lo: int, hi: int) -> Relation:
            return self._pipe(a.left_pipeline, ls, reader, lo, hi)

        def rpipe(lo: int, hi: int) -> Relation:
            return self._pipe(a.right_pipeline, rs, reader, lo, hi)

        # ΔL applied to the left state first, so the second product
        # probes L_new: ΔOut = ΔL⋈R_old + L_new⋈ΔR covers the Δ⋈Δ
        # cross term exactly once (bilinear chain rule).
        l_delta: List[Tuple[Relation, int]] = [
            (rel, -1) for rel in lside.advance_floor(ld.window[0], lpipe)]
        for slo, shi in _split_ranges(ld.arrive, ld.splits):
            out = lpipe(slo, shi)
            lside.append(slo, shi, out)
            l_delta.append((out, +1))
        rows: List[tuple] = []
        weights: List[int] = []
        for rel, w in l_delta:
            self._probe_into(rel, w, a.join_node.left_key, rside,
                             True, rows, weights)
        r_delta: List[Tuple[Relation, int]] = [
            (rel, -1) for rel in rside.advance_floor(rd.window[0], rpipe)]
        for slo, shi in _split_ranges(rd.arrive, rd.splits):
            out = rpipe(slo, shi)
            rside.append(slo, shi, out)
            r_delta.append((out, +1))
        for rel, w in r_delta:
            self._probe_into(rel, w, a.join_node.right_key, lside,
                             False, rows, weights)

        if rows:
            zrel = Relation.from_rows(a.join_node.schema, rows)
            zw = np.asarray(weights, dtype=np.int64)
            if a.join_node.residual is not None:
                mask = a.join_node.residual.evaluate(zrel)
                keep = kernel.mask_select(mask)
                zrel = zrel.take(keep)
                zw = zw[np.asarray(keep)]
            bats = [b for _n, b in zrel.columns()]
            pos, cw = kernel.zset_consolidate(bats, zw)
            if len(pos) < zrel.row_count:
                self.consolidations += 1
            zrel = zrel.take(pos)
            zw = cw
        else:
            zrel = Relation.empty(a.join_node.schema)
            zw = np.empty(0, dtype=np.int64)
        self.delta_rows_out += zrel.row_count
        if self.aggregator is not None:
            if zrel.row_count:
                self.aggregator.apply(zrel, zw)
            return self.aggregator.finalize()
        if zrel.row_count:
            self._out.apply(zrel, zw)
        return self._out.materialize()

    @staticmethod
    def _probe_into(rel: Relation, weight: int, key_expr,
                    other: _JoinSideState, delta_is_left: bool,
                    rows: List[tuple], weights: List[int]) -> None:
        if rel.row_count == 0:
            return
        if key_expr is None:
            matches_for = None
            all_other = other.all_rows()
        else:
            matches_for = key_expr.evaluate(rel).tolist()
            all_other = None
        drows = rel.to_rows()
        for i, dr in enumerate(drows):
            if matches_for is None:
                matches = all_other
            else:
                k = matches_for[i]
                if k is None:
                    continue  # nil join keys never match
                matches = other.probe(k)
            if not matches:
                continue
            if delta_is_left:
                rows.extend(dr + m for m in matches)
            else:
                rows.extend(m + dr for m in matches)
            weights.extend([weight] * len(matches))

    # -- monitoring ---------------------------------------------------------

    def state_rows(self) -> int:
        total = 0
        if self.aggregator is not None:
            total += self.aggregator.group_count()
        if self._store is not None:
            total += self._store.row_total()
        if self._sides is not None:
            total += sum(s.row_total() for s in self._sides.values())
        if self._out is not None:
            total += len(self._out.weights)
        return total

    def state_nbytes(self) -> int:
        total = 0
        if self.aggregator is not None:
            total += self.aggregator.state_nbytes()
        if self._store is not None:
            total += self._store.nbytes()
        if self._sides is not None:
            total += sum(s.nbytes() for s in self._sides.values())
        if self._out is not None:
            total += self._out.nbytes()
        return total

    def delta_stats(self) -> Dict[str, int]:
        return {
            "delta_rows_in": self.delta_rows_in,
            "delta_rows_out": self.delta_rows_out,
            "delta_consolidations": self.consolidations,
            "delta_rescans": self.aggregator.rescans
            if self.aggregator is not None else 0,
            "delta_state_rows": self.state_rows(),
            "delta_state_bytes": self.state_nbytes(),
        }

    def describe_state(self) -> List[str]:
        lines: List[str] = []
        if self.aggregator is not None:
            lines.append(
                f"group states: {self.aggregator.group_count()} "
                f"(~{self.aggregator.state_nbytes()} bytes, "
                f"{self.aggregator.rescans} extreme rescans)")
        if self._store is not None:
            lines.append(f"window chunks: {len(self._store.chunks)} "
                         f"({self._store.row_total()} rows)")
        if self._sides is not None:
            for name, side in self._sides.items():
                lines.append(
                    f"join side {name}: {len(side.chunks)} chunks, "
                    f"{side.row_total()} rows, "
                    f"{len(side.index)} indexed keys")
        if self._out is not None:
            lines.append(
                f"output z-set: {len(self._out.weights)} distinct rows")
        return lines
