"""Monitoring: the textual equivalent of the demo's GUI panes.

* :meth:`Monitor.network` — the query-network view (Figure 3): which
  receptor feeds which basket, which factories bind it, where results go.
* :meth:`Monitor.analysis` — the analysis pane (Figure 4): per-query and
  network-wide throughput/latency counters over the run.
* :meth:`Monitor.plans` — the plan inspection view (Figure 2/3): logical
  plan, one-time MAL, continuous MAL side by side.
* :meth:`Monitor.timeseries` — sampled basket/factory counters for
  "continuous monitoring of inputs sizes and intermediate result sizes".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.rewriter import plan_diff


class Monitor:
    """Reads engine state; owns the sampled time series."""

    def __init__(self, engine):
        self.engine = engine
        self.samples: List[Dict] = []

    # -- sampling ---------------------------------------------------------

    def sample(self) -> Dict:
        """Record one snapshot of basket sizes and factory counters."""
        snap = {
            "t": self.engine.now(),
            "baskets": {name: basket.stats()
                        for name, basket in
                        self.engine.scheduler.baskets.items()},
            "factories": {f.name: f.stats()
                          for f in self.engine.scheduler.factories},
        }
        self.samples.append(snap)
        return snap

    def timeseries(self, basket: Optional[str] = None,
                   metric: str = "size") -> List:
        """Sampled series ``[(t, value)]`` for one basket metric."""
        out = []
        for snap in self.samples:
            if basket is None:
                value = sum(b[metric] for b in snap["baskets"].values())
            else:
                value = snap["baskets"][basket][metric]
            out.append((snap["t"], value))
        return out

    # -- panes ---------------------------------------------------------------

    def network(self) -> str:
        """Query-network topology as indented text (demo Figure 3)."""
        lines = ["query network:"]
        eng = self.engine
        for receptor in eng.scheduler.receptors:
            state = " (paused)" if receptor.paused else ""
            lines.append(f"  receptor {receptor.name}{state} "
                         f"-> basket {receptor.basket.name} "
                         f"[{receptor.total_ingested} in]")
        for name, basket in eng.scheduler.baskets.items():
            stats = basket.stats()
            lines.append(f"  basket {name}: size={stats['size']} "
                         f"in={stats['total_in']} "
                         f"dropped={stats['total_dropped']} "
                         f"hw={stats['high_water']}")
            for sub in basket.subscriptions():
                lines.append(f"    bound by {sub.name}: "
                             f"read@{sub.read_upto} "
                             f"released@{sub.released_upto}"
                             + (" (paused)" if sub.paused else ""))
        for factory in eng.scheduler.factories:
            inputs = ", ".join(factory.input_streams())
            lines.append(f"  factory {factory.name} [{factory.state}] "
                         f"<- {{{inputs}}} fires={factory.fires} "
                         f"out={factory.rows_out}")
            lines.append(f"    -> emitter {factory.emitter.name} "
                         f"({factory.emitter.total_batches} batches)")
        return "\n".join(lines)

    def analysis(self) -> str:
        """Aggregated performance metrics (demo Figure 4)."""
        eng = self.engine
        lines = [f"analysis @ t={eng.now()}ms "
                 f"(steps={eng.scheduler.steps}, "
                 f"fired={eng.scheduler.total_fired}):"]
        total_in = total_out = 0
        busy = 0.0
        for factory in eng.scheduler.factories:
            stats = factory.stats()
            total_in += stats["tuples_in"]
            total_out += stats["rows_out"]
            busy += stats["busy_seconds"]
            per_fire = (stats["busy_seconds"] / stats["fires"] * 1000
                        if stats["fires"] else 0.0)
            lines.append(
                f"  {factory.name}: fires={stats['fires']} "
                f"in={stats['tuples_in']} out={stats['rows_out']} "
                f"busy={stats['busy_seconds']:.4f}s "
                f"({per_fire:.3f} ms/fire)")
            extra = {k: v for k, v in stats.items()
                     if k.endswith(("cached", "computed", "reused",
                                    "_rows"))
                     and not k.startswith("delta_")}
            if extra:
                lines.append("    cache: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(extra.items())))
            if "delta_rows_in" in stats:
                lines.append(
                    f"    delta: in={stats['delta_rows_in']} "
                    f"out={stats['delta_rows_out']} "
                    f"consolidations={stats['delta_consolidations']} "
                    f"rescans={stats['delta_rescans']} "
                    f"state={stats['delta_state_rows']} rows "
                    f"/{stats['delta_state_bytes']} bytes")
        lines.append(f"  network totals: in={total_in} out={total_out} "
                     f"busy={busy:.4f}s")
        sched = eng.scheduler
        if sched.parallel_workers > 1:
            pstats = sched.parallel_stats()
            lines.append(
                f"  scheduler [parallel={pstats['workers']} workers]: "
                f"waves={pstats['waves']} "
                f"max_width={pstats['max_wave_width']} "
                f"avg_width={pstats['avg_wave_width']} "
                f"parallel_fires={pstats['parallel_fires']}")
        if sched.failed_total:
            lines.append(f"  failures: total={sched.failed_total} "
                         f"(last {len(sched.failed)} kept)")
        recycler = getattr(eng, "recycler", None)
        if recycler is not None:
            stats = recycler.stats()
            state = "on" if stats["enabled"] else "off"
            lines.append(
                f"  recycler [{state}] ({stats['policy']}): "
                f"hits={stats['hits']} "
                f"misses={stats['misses']} "
                f"slice_hits={stats['slice_hits']} "
                f"slice_misses={stats['slice_misses']} "
                f"evictions={stats['evictions']} "
                f"invalidations={stats['invalidations']} "
                f"entries={stats['entries']} "
                f"bytes={stats['bytes']}/{stats['budget_bytes']}")
            if stats["admission_rejects"] or stats["reuse_decays"]:
                lines.append(
                    f"    admission: min_cost={stats['min_cost_ms']:.1f}ms "
                    f"rejects={stats['admission_rejects']} "
                    f"reuse_decays={stats['reuse_decays']}")
            if stats["chain_stamped"] or stats["bytes_saved"]:
                lines.append(
                    f"    chain: stamped={stats['chain_stamped']} "
                    f"hits={stats['chain_hits']} | saved "
                    f"{stats['bytes_saved']} bytes, "
                    f"{stats['cost_saved_ms']:.1f} ms recompute")
        return "\n".join(lines)

    def net(self) -> str:
        """The network-edge pane: per-connection ingest/deliver
        counters of the attached :class:`~repro.net.server.
        DataCellServer` (the demo's receptor/emitter processes made
        visible)."""
        edge = getattr(self.engine, "net_edge", None)
        if edge is None:
            return "network edge: (not attached — engine is in-process)"
        stats = edge.net_stats()
        state = "running" if stats["running"] else "stopped"
        lines = [f"network edge [{state}] on {stats['address']} "
                 f"(admission={stats['admission']}, "
                 f"pending<={stats['max_pending_batches']}, "
                 f"client-queue<={stats['max_client_queue']}):"]
        for conn in stats["connections"]:
            lines.append(f"  conn #{conn['id']} [{conn['peer']}]:")
            for stream, r in sorted(conn["receptors"].items()):
                lines.append(
                    f"    receptor {stream}: pending={r['pending_batches']} "
                    f"in={r['total_ingested']} shed={r['total_shed']} "
                    f"blocked={r['total_blocked']}")
            for sub in conn["subscriptions"]:
                state = "evicted" if sub["evicted"] else (
                    "dead" if sub["dead"] else "live")
                lines.append(
                    f"    subscriber {sub['query']} [{state}]: "
                    f"sent={sub['sent_batches']} "
                    f"rows={sub['sent_rows']} "
                    f"queue={sub['queue_depth']}")
            if not conn["receptors"] and not conn["subscriptions"]:
                lines.append("    (idle)")
        if not stats["connections"]:
            lines.append("  (no open connections)")
        totals = stats["totals"]
        lines.append(
            f"  totals [{stats['connections_total']} connections]: "
            f"offered={totals['offered']} ingested={totals['ingested']} "
            f"shed={totals['shed']} blocked={totals['blocked']} "
            f"delivered={totals['delivered_rows']} rows "
            f"evicted={totals['evicted']}")
        return "\n".join(lines)

    def pg(self) -> str:
        """The Postgres front-end pane: per-session statement/row
        counters of the attached :class:`~repro.pg.server.
        PGWireServer`."""
        edge = getattr(self.engine, "pg_edge", None)
        if edge is None:
            return "postgres front end: (not attached — start one " \
                   "with repro serve --pg-port)"
        stats = edge.pg_stats()
        state = "running" if stats["running"] else "stopped"
        lines = [f"postgres front end [{state}] on {stats['address']} "
                 f"(psql -h {stats['address'].split(':')[0]} "
                 f"-p {stats['address'].split(':')[1]}):"]
        for sess in stats["sessions"]:
            tail = f" tailing {sess['tailing']!r}" \
                if sess["tailing"] else ""
            lines.append(
                f"  session #{sess['id']} [{sess['peer']}] "
                f"user={sess['user'] or '?'}:{tail} "
                f"queries={sess['queries']} rows={sess['rows_sent']} "
                f"errors={sess['errors']}")
        if not stats["sessions"]:
            lines.append("  (no open sessions)")
        lines.append(
            f"  totals [{stats['connections_total']} connections]: "
            f"queries={stats['queries']} rows={stats['rows_sent']} "
            f"tails={stats['tails']} cancels={stats['cancels']} "
            f"errors={stats['errors']}")
        return "\n".join(lines)

    def interp(self) -> str:
        """The plan-execution pane: slot-compiler and digest-cache
        counters, per-opcode cumulative wall time from the compiled
        thunks (when profiling is on) and the recycler autotuner's
        budget trajectory."""
        stats = self.engine.interp_stats()
        lines = [
            f"plan execution: {stats['factories_compiled']} compiled, "
            f"{stats['factories_interpreted']} interpreted "
            f"(compiles={stats['compiles']} "
            f"shared={stats['compile_cache_hits']} "
            f"fallbacks={stats['compile_fallbacks']})",
            f"  fingerprints: cache hits={stats['fp_cache_hits']} "
            f"misses={stats['fp_cache_misses']} "
            f"entries={stats['fp_cache_entries']} | "
            f"emit stamps={stats['emit_stamps']}",
        ]
        if stats["opcode_profile"]:
            lines.append("  per-opcode (cumulative):")
            for opcode, cell in stats["opcode_profile"].items():
                lines.append(f"    {opcode}: {cell['calls']} calls, "
                             f"{cell['ms']:.3f} ms")
        elif not stats["profile_enabled"]:
            lines.append("  per-opcode: (profiling off — construct the "
                         "engine with interp_profile=True)")
        tuner = "on" if stats["autotune"] else "off"
        lines.append(f"  autotuner [{tuner}]: "
                     f"budget={stats['budget_bytes']} bytes "
                     f"grows={stats['budget_grows']} "
                     f"shrinks={stats['budget_shrinks']}")
        if len(stats["budget_trajectory"]) > 1:
            path = " -> ".join(str(b) for b
                               in stats["budget_trajectory"])
            lines.append(f"    trajectory: {path}")
        return "\n".join(lines)

    def log(self) -> str:
        """The durability pane: per-stream log segments, durable
        watermarks, group-commit shape, checkpoint and recovery
        counters."""
        eng = self.engine
        if not getattr(eng, "durable", False):
            return ("durable log: (off — construct the engine with "
                    "data_dir=...)")
        stats = eng.log_stats()
        lines = [f"durable log [{stats['durability']}] "
                 f"at {stats['data_dir']}: "
                 f"checkpoints={stats['checkpoints']} "
                 f"(last {stats['last_checkpoint_ms']:.1f} ms), "
                 f"recovered={'yes' if stats['recovered'] else 'no'}"]
        if stats.get("checkpoint_error"):
            lines.append(f"  CHECKPOINT ERROR: "
                         f"{stats['checkpoint_error']}")
        for name, s in stats["streams"].items():
            lines.append(
                f"  {name}: next={s['next_offset']} "
                f"durable={s['durable_offset']} "
                f"segments={s['segments']}x{s['segment_rows']} "
                f"backlog={s['backlog_rows']} rows")
            lines.append(
                f"    groups={s['groups']} "
                f"(avg {s['group_rows'] / max(s['groups'], 1):.1f} "
                f"rows, max {s['max_group_rows']}) "
                f"fsyncs={s['fsyncs']} bytes={s['bytes_written']}"
                + (f" torn={s['torn_rows']}" if s["torn_rows"]
                   else "")
                + (f" FAILED: {s['failed']}" if s["failed"] else ""))
            knobs = []
            if s.get("retain_ms") is not None:
                knobs.append(f"retain_ms={s['retain_ms']}")
            if s.get("retain_bytes") is not None:
                knobs.append(f"retain_bytes={s['retain_bytes']}")
            retention = (
                f"    retention [{' '.join(knobs) if knobs else 'off'}]"
                f": floor={s.get('durable_floor', 0)} "
                f"retained={s.get('retained_bytes', 0)} bytes "
                f"truncations={s.get('retention_truncations', 0)} "
                f"dropped={s.get('retention_rows', 0)} rows")
            pager = s.get("pager")
            if pager is not None:
                retention += (
                    f" | paged: reads={pager['paged_reads']} "
                    f"rows={pager['paged_rows']} "
                    f"mapped={pager['mapped_files']} "
                    f"(hit {pager['map_hits']}/"
                    f"{pager['map_hits'] + pager['map_misses']})")
            lines.append(retention)
        if not stats["streams"]:
            lines.append("  (no stream logs open)")
        return "\n".join(lines)

    def plans(self, query_name: str) -> str:
        """Logical plan + MAL before/after the continuous rewrite."""
        query = self.engine.continuous_query(query_name)
        parts = [f"-- {query.name}: {query.sql_text}",
                 f"-- mode: {query.mode}",
                 "-- logical plan --", query.plan.pretty()]
        if query.incremental_analysis is not None:
            parts.append(query.incremental_analysis.describe())
        parts.append(plan_diff(query.program, query.continuous_program))
        return "\n".join(parts)

    def intermediates(self, query_name: str) -> str:
        """Where tuples live right now (demo: "monitor where tuples
        live at any point in time, i.e., in which intermediate columns
        wait or which operators they feed").

        For incremental queries: every cached basic-window slice,
        partial-aggregate state and join-pair intermediate with its row
        count. For re-evaluation queries: the raw window the basket
        retains for the next firing.
        """
        query = self.engine.continuous_query(query_name)
        lines = [f"intermediates of {query.name!r} ({query.mode}):"]
        for stream in query.streams:
            basket = self.engine.scheduler.baskets[stream]
            for sub in basket.subscriptions():
                if sub.name != query.name:
                    continue
                waiting = basket.next_oid - sub.read_upto
                retained = sub.read_upto - max(sub.released_upto,
                                               basket.first_oid)
                lines.append(
                    f"  basket {stream}: {waiting} tuples waiting, "
                    f"{max(retained, 0)} consumed-but-retained")
        factory = query.factory
        executor = getattr(factory, "executor", None)
        if executor is None:
            lines.append("  (re-evaluation mode: no cached "
                         "intermediates, full window re-read per fire)")
            return "\n".join(lines)
        if hasattr(executor, "describe_state"):
            for line in executor.describe_state():
                lines.append("  " + line)
            if len(lines) == 1:
                lines.append("  (nothing cached)")
            return "\n".join(lines)
        for (stream, bw), rel in sorted(executor._slices.items()):
            lines.append(f"  slice cache [{stream} bw{bw}]: "
                         f"{rel.row_count} rows "
                         f"({', '.join(rel.names)})")
        for (stream, bw), partial in sorted(executor._partials.items()):
            lines.append(f"  partial states [{stream} bw{bw}]: "
                         f"{len(partial)} groups")
        for pair, payload in sorted(executor._pairs.items()):
            size = payload.row_count if hasattr(payload, "row_count") \
                else len(payload)
            kind = "rows" if hasattr(payload, "row_count") else "groups"
            lines.append(f"  join-pair cache {pair}: {size} {kind}")
        if len(lines) == 1:
            lines.append("  (nothing cached)")
        return "\n".join(lines)

    def report(self) -> str:
        """Everything at once."""
        return self.network() + "\n\n" + self.analysis()
