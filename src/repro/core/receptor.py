"""Receptors: the ingestion edge of the DataCell architecture.

*"It contains receptors and emitters, i.e., a set of separate processes
per stream and per client, respectively, to listen for new data and to
deliver results."* In simulation mode a receptor is *pumped* by the
scheduler loop: every pump appends all source events whose timestamp has
been reached to the stream's basket. A threaded live mode is available
for interactive use.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.basket import Basket
from repro.core.clock import Clock
from repro.errors import StreamError
from repro.streams.source import StreamSource


class Receptor:
    """Feeds one basket from one source."""

    def __init__(self, name: str, basket: Basket,
                 source: Optional[StreamSource] = None):
        self.name = name
        self.basket = basket
        self._iter = iter(source) if source is not None else None
        self._pending: Optional[Tuple[int, Sequence[Any]]] = None
        self.paused = False
        self.total_ingested = 0
        self.exhausted = source is None

    # -- simulation-mode pumping --------------------------------------

    def pump(self, now: int) -> int:
        """Ingest every source event with timestamp <= now."""
        if self.paused or self._iter is None:
            return 0
        batch: List[Sequence[Any]] = []
        batch_ts = None
        appended = 0
        while True:
            if self._pending is None:
                self._pending = next(self._iter, None)
                if self._pending is None:
                    self.exhausted = True
                    break
            ts, row = self._pending
            if ts > now:
                break
            # group consecutive same-timestamp rows into one append
            if batch and ts != batch_ts:
                appended += self.basket.append_rows(batch, batch_ts)
                batch = []
            batch_ts = ts
            batch.append(row)
            self._pending = None
        if batch:
            appended += self.basket.append_rows(batch, batch_ts)
        self.total_ingested += appended
        return appended

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next undelivered event (None when drained)."""
        if self._iter is None:
            return None
        if self._pending is None:
            self._pending = next(self._iter, None)
            if self._pending is None:
                self.exhausted = True
                return None
        return self._pending[0]

    # -- direct ingestion (no source) -------------------------------------

    def feed(self, rows: Sequence[Sequence[Any]], now: int) -> int:
        """Push rows straight into the basket (external driver)."""
        if self.paused:
            raise StreamError(f"receptor {self.name!r} is paused")
        n = self.basket.append_rows(rows, now)
        self.total_ingested += n
        return n

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def __repr__(self) -> str:
        return (f"Receptor({self.name} -> {self.basket.name}, "
                f"ingested={self.total_ingested})")


class ThreadedReceptor(Receptor):
    """Live-mode receptor: a daemon thread that sleeps until each event's
    timestamp and appends it — one 'separate process per stream'."""

    def __init__(self, name: str, basket: Basket, source: StreamSource,
                 clock: Clock):
        super().__init__(name, basket, source)
        self.clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise StreamError("receptor thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"receptor-{self.name}")
        self._thread.start()

    def stop(self, timeout: float = 1.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        while not self._stop.is_set():
            upcoming = self.next_event_time()
            if upcoming is None:
                return
            delay_ms = upcoming - self.clock.now()
            if delay_ms > 0:
                time.sleep(min(delay_ms / 1000.0, 0.05))
                continue
            if not self.paused:
                self.pump(self.clock.now())
            else:
                time.sleep(0.01)
