"""Receptors: the ingestion edge of the DataCell architecture.

*"It contains receptors and emitters, i.e., a set of separate processes
per stream and per client, respectively, to listen for new data and to
deliver results."* In simulation mode a receptor is *pumped* by the
scheduler loop: every pump appends all source events whose timestamp has
been reached to the stream's basket. A threaded live mode is available
for interactive use.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.basket import Basket
from repro.core.clock import Clock
from repro.errors import StreamError
from repro.streams.source import StreamSource


class Receptor:
    """Feeds one basket from one source."""

    def __init__(self, name: str, basket: Basket,
                 source: Optional[StreamSource] = None):
        self.name = name
        self.basket = basket
        self._iter = iter(source) if source is not None else None
        self._pending: Optional[Tuple[int, Sequence[Any]]] = None
        self.paused = False
        self.total_ingested = 0
        self.exhausted = source is None

    # -- simulation-mode pumping --------------------------------------

    def pump(self, now: int) -> int:
        """Ingest every source event with timestamp <= now."""
        if self.paused or self._iter is None:
            return 0
        batch: List[Sequence[Any]] = []
        batch_ts = None
        appended = 0
        while True:
            if self._pending is None:
                self._pending = next(self._iter, None)
                if self._pending is None:
                    self.exhausted = True
                    break
            ts, row = self._pending
            if ts > now:
                break
            # group consecutive same-timestamp rows into one append
            if batch and ts != batch_ts:
                appended += self.basket.append_rows(batch, batch_ts)
                batch = []
            batch_ts = ts
            batch.append(row)
            self._pending = None
        if batch:
            appended += self.basket.append_rows(batch, batch_ts)
        self.total_ingested += appended
        return appended

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next undelivered event (None when drained)."""
        if self._iter is None:
            return None
        if self._pending is None:
            self._pending = next(self._iter, None)
            if self._pending is None:
                self.exhausted = True
                return None
        return self._pending[0]

    # -- direct ingestion (no source) -------------------------------------

    def feed(self, rows: Sequence[Sequence[Any]], now: int) -> int:
        """Push rows straight into the basket (external driver)."""
        if self.paused:
            raise StreamError(f"receptor {self.name!r} is paused")
        n = self.basket.append_rows(rows, now)
        self.total_ingested += n
        return n

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False

    def __repr__(self) -> str:
        return (f"Receptor({self.name} -> {self.basket.name}, "
                f"ingested={self.total_ingested})")


class ThreadedReceptor(Receptor):
    """Live-mode receptor: a daemon thread that sleeps until each event's
    timestamp and appends it — one 'separate process per stream'."""

    def __init__(self, name: str, basket: Basket, source: StreamSource,
                 clock: Clock):
        super().__init__(name, basket, source)
        self.clock = clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise StreamError("receptor thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"receptor-{self.name}")
        self._thread.start()

    def stop(self, timeout: float = 1.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def _run(self) -> None:
        while not self._stop.is_set():
            upcoming = self.next_event_time()
            if upcoming is None:
                return
            delay_ms = upcoming - self.clock.now()
            if delay_ms > 0:
                time.sleep(min(delay_ms / 1000.0, 0.05))
                continue
            if not self.paused:
                self.pump(self.clock.now())
            else:
                time.sleep(0.01)


class SocketReceptor(Receptor):
    """Network-edge receptor: one per connected stream producer.

    A connection thread :meth:`offer`\\ s row batches into a bounded
    *admission queue*; the scheduler's pump phase drains queued batches
    into the basket, so socket ingestion overlaps factory firing. The
    bound is the backpressure valve when baskets back up:

    * ``policy="block"`` — a full queue makes ``offer`` wait (up to
      ``block_timeout_s``) for the scheduler to drain, propagating
      backpressure to the producer; each wait bumps ``total_blocked``.
    * ``policy="shed"`` — a full queue rejects the batch outright
      (``offer`` returns 0, ``total_shed`` counts the rows); the server
      answers the producer with a shed ERROR frame.
    """

    POLICIES = ("block", "shed")

    def __init__(self, name: str, basket: Basket, max_pending: int = 64,
                 policy: str = "block", block_timeout_s: float = 5.0,
                 log_backlog_limit: int = 256):
        if policy not in self.POLICIES:
            raise StreamError(
                f"unknown admission policy {policy!r} "
                f"(expected one of {self.POLICIES})")
        if max_pending < 1:
            raise StreamError("max_pending must be >= 1")
        super().__init__(name, basket, source=None)
        self.policy = policy
        self.max_pending = max_pending
        self.block_timeout_s = block_timeout_s
        # durability backpressure: when the stream's log writer backlog
        # exceeds this many queued group-commit batches, admission
        # treats it like a full queue (the disk, not the scheduler, is
        # the bottleneck)
        self.log_backlog_limit = max(int(log_backlog_limit), 1)
        self._queue: "queue.Queue[List[Sequence[Any]]]" = \
            queue.Queue(maxsize=max_pending)
        self.closed = False
        self.exhausted = False  # live until closed *and* drained
        self.total_offered = 0
        self.total_shed = 0
        self.total_blocked = 0
        self.total_log_blocked = 0

    # -- producer side (connection thread) -----------------------------

    def offer(self, rows: Sequence[Sequence[Any]]) -> int:
        """Admit one batch; returns the number of rows accepted (0 when
        the batch was shed). Raises :class:`StreamError` when paused,
        closed, or when a blocking admission times out."""
        if self.paused:
            raise StreamError(f"receptor {self.name!r} is paused")
        if self.closed:
            raise StreamError(f"receptor {self.name!r} is closed")
        batch = [list(row) for row in rows]
        if not batch:
            return 0
        self.total_offered += len(batch)
        if not self._log_admission(len(batch)):
            return 0
        try:
            self._queue.put_nowait(batch)
        except queue.Full:
            if self.policy == "shed":
                self.total_shed += len(batch)
                return 0
            self.total_blocked += 1
            try:
                self._queue.put(batch, timeout=self.block_timeout_s)
            except queue.Full:
                self.total_shed += len(batch)
                raise StreamError(
                    f"receptor {self.name!r}: admission queue full for "
                    f"{self.block_timeout_s}s (scheduler not draining)"
                ) from None
        return len(batch)

    def _log_admission(self, batch_rows: int) -> bool:
        """Durability backpressure: hold (or shed) offers while the
        stream log's group-commit writer is drowning. Returns False
        when the batch was shed."""
        log = self.basket.log
        if log is None or log.backlog_batches() < self.log_backlog_limit:
            return True
        if self.policy == "shed":
            self.total_shed += batch_rows
            return False
        self.total_log_blocked += 1
        deadline = time.monotonic() + self.block_timeout_s
        while log.backlog_batches() >= self.log_backlog_limit:
            if time.monotonic() >= deadline:
                self.total_shed += batch_rows
                raise StreamError(
                    f"receptor {self.name!r}: log writer backlog above "
                    f"{self.log_backlog_limit} batches for "
                    f"{self.block_timeout_s}s (disk not keeping up)")
            time.sleep(0.005)
        return True

    # -- scheduler side -------------------------------------------------

    def pump(self, now: int) -> int:
        """Drain every queued batch into the basket (scheduler phase)."""
        if self.paused:
            return 0
        appended = 0
        while True:
            try:
                batch = self._queue.get_nowait()
            except queue.Empty:
                break
            appended += self.basket.append_rows(batch, now)
        self.total_ingested += appended
        if self.closed and self._queue.empty():
            self.exhausted = True
        return appended

    def close(self) -> None:
        """No further offers; pump drains what is queued, then the
        receptor reports itself exhausted."""
        self.closed = True
        if self._queue.empty():
            self.exhausted = True

    def pending_batches(self) -> int:
        return self._queue.qsize()

    def stats(self) -> Dict[str, Any]:
        return {"pending_batches": self.pending_batches(),
                "total_offered": self.total_offered,
                "total_ingested": self.total_ingested,
                "total_shed": self.total_shed,
                "total_blocked": self.total_blocked,
                "total_log_blocked": self.total_log_blocked,
                "policy": self.policy,
                "closed": self.closed}

    def __repr__(self) -> str:
        return (f"SocketReceptor({self.name} -> {self.basket.name}, "
                f"policy={self.policy}, "
                f"pending={self.pending_batches()}, "
                f"ingested={self.total_ingested})")
