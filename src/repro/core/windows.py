"""Window semantics: specs, per-query window cursors, basic windows.

DataCell *"achieves incremental processing by partitioning a window into
n smaller parts, called basic windows. Each basic window is of equal
size to the sliding step of the window and is processed separately."*

Two layers live here:

* :class:`WindowState` — the re-evaluation cursor: when is the next full
  window available, which oid range does it cover, how far may the
  basket drop tuples.
* :class:`BasicWindowTracker` — the incremental cursor: which basic
  windows are newly complete (to be processed once and cached) and which
  set of basic windows composes the next full window.

Tuple windows count tuples; time windows use basket arrival timestamps
(milliseconds). For tumbling windows ``slide == size`` and both modes
coincide.

Log-resident history: both cursors express windows as absolute oid
ranges and read them through the basket (``relation``,
``arrival_slice``, ``oid_at_or_after``). When the basket carries a
:class:`~repro.store.paging.PagedWindowBinder` those reads extend
*below* ``first_oid`` down to the log's retention floor — a
``from_start`` replay cursor or a recovered cursor whose window dips
under the vacuum floor pages sealed segments as zero-copy views
instead of clamping to the retained prefix (or rehydrating the whole
range into memory). Neither cursor needs to know which side of
``first_oid`` its bounds fall on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import WindowError
from repro.core.basket import Basket, Subscription
from repro.sql.ast import WindowClause


class WindowSpec:
    """Normalized window description.

    ``kind`` is ``"none"`` (consume everything new), ``"tuple"`` or
    ``"time"``. Time sizes are milliseconds. ``slide`` defaults to
    ``size`` (tumbling).
    """

    __slots__ = ("kind", "size", "slide")

    def __init__(self, kind: str, size: int = 0, slide: Optional[int] = None):
        if kind not in ("none", "tuple", "time"):
            raise WindowError(f"unknown window kind {kind!r}")
        if kind != "none":
            if size <= 0:
                raise WindowError("window size must be positive")
            slide = size if slide is None else slide
            if slide <= 0:
                raise WindowError("window slide must be positive")
            if slide > size:
                raise WindowError(
                    f"slide {slide} larger than window size {size} "
                    f"(gaps between windows are not supported)")
        self.kind = kind
        self.size = size
        self.slide = slide if kind != "none" else 0

    @classmethod
    def none(cls) -> "WindowSpec":
        return cls("none")

    @classmethod
    def from_clause(cls, clause: Optional[WindowClause]) -> "WindowSpec":
        if clause is None:
            return cls.none()
        if clause.time_based:
            slide = clause.slide * 1000 if clause.slide is not None else None
            return cls("time", clause.size * 1000, slide)
        return cls("tuple", clause.size, clause.slide)

    @property
    def is_sliding(self) -> bool:
        return self.kind != "none" and self.slide < self.size

    @property
    def is_tumbling(self) -> bool:
        return self.kind != "none" and self.slide == self.size

    @property
    def basic_window_count(self) -> int:
        """Number of basic windows composing one full window."""
        if self.kind == "none":
            raise WindowError("unwindowed scans have no basic windows")
        if self.size % self.slide != 0:
            raise WindowError(
                f"window size {self.size} is not a multiple of slide "
                f"{self.slide}; incremental mode needs equal basic windows")
        return self.size // self.slide

    def __repr__(self) -> str:
        if self.kind == "none":
            return "WindowSpec(none)"
        return f"WindowSpec({self.kind}, size={self.size}, slide={self.slide})"


class WindowState:
    """Re-evaluation cursor for one (query, stream) pair.

    Exposes the Petri-net firing condition (:meth:`ready`), the oid range
    of the next evaluation (:meth:`slice_bounds`) and moves the window
    forward after a fire (:meth:`advance`), releasing expired tuples.
    """

    def __init__(self, spec: WindowSpec, basket: Basket,
                 sub: Subscription, anchor_time: int = 0):
        self.spec = spec
        self.basket = basket
        self.sub = sub
        self._win_start_oid = sub.read_upto
        self._next_fire_time = anchor_time + spec.size \
            if spec.kind == "time" else 0
        self.fires = 0
        # oid bounds of the last fired window; None before the first
        # firing. Delta mode differences consecutive windows off it.
        self.last_bounds: Optional[Tuple[int, int]] = None

    # -- firing condition --------------------------------------------

    def has_new_data(self) -> bool:
        return self.basket.next_oid > self.sub.read_upto

    def pending_tuples(self) -> int:
        return self.basket.next_oid - self.sub.read_upto

    def ready(self, now: int) -> bool:
        if self.sub.paused:
            return False
        if self.spec.kind == "none":
            return self.has_new_data()
        if self.spec.kind == "tuple":
            return self.basket.next_oid >= \
                self._win_start_oid + self.spec.size
        return now >= self._next_fire_time

    # -- window extent -----------------------------------------------

    def slice_bounds(self, now: int) -> Tuple[int, int]:
        """Absolute oid range [lo, hi) the next firing evaluates.

        The lo bound may fall below ``basket.first_oid`` (a replay
        cursor, or a time window anchored before the vacuum floor);
        the basket then serves the historic prefix through its paged
        binder when one is attached. ``basket.oid_at_or_after`` is
        pager-aware for the same reason: a time bound predating the
        retained arrivals resolves against the log's ``__ts``
        segments rather than snapping to ``first_oid``."""
        if self.spec.kind == "none":
            return self.sub.read_upto, self.basket.next_oid
        if self.spec.kind == "tuple":
            return (self._win_start_oid,
                    self._win_start_oid + self.spec.size)
        hi_t = self._next_fire_time
        lo_t = hi_t - self.spec.size
        return (self.basket.oid_at_or_after(lo_t),
                self.basket.oid_at_or_after(hi_t))

    def delta_bounds(self, now: int
                     ) -> Tuple[Tuple[int, int], Tuple[int, int],
                                Tuple[int, int]]:
        """Z-set difference of the next window against the last fired one.

        Returns ``((lo, hi), (alo, ahi), (elo, ehi))``: the full window,
        the arrival range (weight +1) and the expiry range (weight -1),
        all absolute oid ranges. On the first firing the arrival range is
        the whole window and the expiry range is empty. Expired tuples
        are still readable from the basket because :meth:`advance` only
        releases up to the *fired* window's lo — the retraction slice
        ``[plo, lo)`` is released by the advance that follows this
        firing, not the one before it.
        """
        if self.spec.kind == "none":
            raise WindowError("delta bounds need a window clause")
        lo, hi = self.slice_bounds(now)
        if self.last_bounds is None:
            return (lo, hi), (lo, hi), (lo, lo)
        plo, phi = self.last_bounds
        alo = min(max(phi, lo), hi)
        elo = plo
        ehi = max(min(lo, phi), elo)
        return (lo, hi), (alo, hi), (elo, ehi)

    # -- advancing ------------------------------------------------------

    def advance(self, now: int,
                consumed_upto: Optional[int] = None,
                retain_expired: bool = False) -> None:
        """Move to the next window and release expired tuples.

        *consumed_upto* is the hi bound the firing actually evaluated.
        Unwindowed cursors must advance to that bound, not to the
        current ``next_oid``: in live mode a receptor thread may have
        appended tuples mid-evaluation, and recomputing the bound here
        would release them unseen.

        *retain_expired* makes the release lag one window: only tuples
        before the *fired* window's lo are released, so the next
        firing's retraction slice ``[plo, lo)`` stays readable from the
        basket. Delta mode needs this; the other modes release eagerly
        up to the next window's lo.
        """
        lo, hi = self.slice_bounds(now)
        self.fires += 1
        if self.spec.kind == "none":
            if consumed_upto is not None:
                hi = consumed_upto
            self.sub.read_upto = hi
            self.sub.release(hi)
            return
        self.last_bounds = (lo, hi)
        if self.spec.kind == "tuple":
            self._win_start_oid += self.spec.slide
            self.sub.read_upto = max(self.sub.read_upto, hi)
            self.sub.release(lo if retain_expired
                             else self._win_start_oid)
            return
        self._next_fire_time += self.spec.slide
        self.sub.read_upto = max(self.sub.read_upto, hi)
        new_lo_t = self._next_fire_time - self.spec.size
        self.sub.release(lo if retain_expired
                         else self.basket.oid_at_or_after(new_lo_t))

    # -- checkpoint / recovery -----------------------------------------

    def snapshot(self) -> dict:
        """Durable cursor state (engine checkpoint). Everything needed
        to resume firing at the same window after a crash, given a
        basket rebuilt from the log over at least
        ``[released_upto, ...)``."""
        return {"kind": "window",
                "win_start_oid": self._win_start_oid,
                "next_fire_time": self._next_fire_time,
                "fires": self.fires,
                "read_upto": self.sub.read_upto,
                "released_upto": self.sub.released_upto}

    def restore(self, state: dict) -> None:
        """Reposition this cursor from a checkpoint snapshot.

        ``last_bounds`` is deliberately *not* restored: a recovered
        delta factory has no operator state, so its first firing must
        see the whole window as arrivals (``delta_bounds`` does exactly
        that when ``last_bounds`` is None) — emissions stay
        byte-identical because delta emits full window results.
        """
        if state.get("kind") != "window":
            raise WindowError(
                f"cursor snapshot kind {state.get('kind')!r} does not "
                f"match a WindowState")
        self._win_start_oid = int(state["win_start_oid"])
        self._next_fire_time = int(state["next_fire_time"])
        self.fires = int(state["fires"])
        self.sub.read_upto = int(state["read_upto"])
        self.sub.released_upto = int(state["released_upto"])
        self.last_bounds = None

    def __repr__(self) -> str:
        return (f"WindowState({self.basket.name}, {self.spec!r}, "
                f"fires={self.fires})")


class BasicWindowTracker:
    """Incremental cursor: basic-window accounting for one stream input.

    Basic window ``j`` covers slide-sized extent ``j`` counted from the
    subscription anchor. Full window ``k`` is composed of basic windows
    ``[k, k + n)`` where ``n = size / slide``. The tracker tells the
    incremental factory which basic windows became complete (to process
    & cache once) and when the next full window can fire.
    """

    def __init__(self, spec: WindowSpec, basket: Basket,
                 sub: Subscription, anchor_time: int = 0):
        if spec.kind == "none":
            raise WindowError("incremental mode needs a window clause")
        self.n_basic = spec.basic_window_count  # validates divisibility
        self.spec = spec
        self.basket = basket
        self.sub = sub
        self._anchor_oid = sub.read_upto
        self._anchor_time = anchor_time
        self._next_bw = 0       # first basic window not yet processed
        self._next_window = 0   # next full window index to fire
        self.fires = 0

    # -- basic-window extents ------------------------------------------

    def _bw_bounds(self, j: int) -> Tuple[int, int]:
        if self.spec.kind == "tuple":
            lo = self._anchor_oid + j * self.spec.slide
            return lo, lo + self.spec.slide
        lo_t = self._anchor_time + j * self.spec.slide
        hi_t = lo_t + self.spec.slide
        return (self.basket.oid_at_or_after(lo_t),
                self.basket.oid_at_or_after(hi_t))

    def _bw_complete(self, j: int, now: int) -> bool:
        if self.spec.kind == "tuple":
            return self.basket.next_oid >= \
                self._anchor_oid + (j + 1) * self.spec.slide
        return now >= self._anchor_time + (j + 1) * self.spec.slide

    # -- factory interface ------------------------------------------------

    def new_basic_windows(self, now: int
                          ) -> List[Tuple[int, int, int]]:
        """Newly complete basic windows as ``(index, lo_oid, hi_oid)``.

        Marks them processed: tuples below the last returned bound are
        released (their contribution now lives in cached intermediates —
        this is the "keep the proper intermediates around" memory win).
        """
        out: List[Tuple[int, int, int]] = []
        j = self._next_bw
        while self._bw_complete(j, now):
            lo, hi = self._bw_bounds(j)
            out.append((j, lo, hi))
            self.sub.read_upto = max(self.sub.read_upto, hi)
            self.sub.release(hi)
            j += 1
        self._next_bw = j
        return out

    def ready(self, now: int) -> bool:
        """True when all basic windows of the next full window are done."""
        if self.sub.paused:
            return False
        last_needed = self._next_window + self.n_basic - 1
        return self._next_bw > last_needed or \
            self._bw_complete(last_needed, now)

    def window_composition(self) -> Tuple[int, List[int]]:
        """(window index, list of basic-window indexes) for the next fire."""
        k = self._next_window
        return k, list(range(k, k + self.n_basic))

    def window_bounds(self) -> Tuple[int, int]:
        """Absolute oid range [lo, hi) of the next full window to fire.

        The same range a reeval cursor would evaluate — used to stamp
        emissions with a content fingerprint comparable across modes.
        """
        k = self._next_window
        lo, _ = self._bw_bounds(k)
        _, hi = self._bw_bounds(k + self.n_basic - 1)
        return lo, hi

    def advance(self) -> List[int]:
        """Finish the current window; returns evictable bw indexes."""
        self.fires += 1
        self._next_window += 1
        return list(range(self._next_window - 1, self._next_window))

    def live_floor(self) -> int:
        """Smallest basic-window index any future window still needs."""
        return self._next_window

    # -- checkpoint / recovery -----------------------------------------

    def snapshot(self) -> dict:
        """Durable cursor state (engine checkpoint).

        ``floor_oid`` — the lo bound of the next full window — is
        computed *now*; for time windows this consults
        ``basket.oid_at_or_after``, which pages into log-resident
        arrivals when part of the next window has already been
        vacuumed (without the pager the lookup would snap to
        ``first_oid`` and the snapshot would over-report the floor).
        Recovery restores the cursor here and serves any basic window
        dipping below the rebuilt basket through the paged binder
        (cached intermediates are not persisted).
        """
        floor_oid, _ = self._bw_bounds(self._next_window)
        return {"kind": "tracker",
                "anchor_oid": self._anchor_oid,
                "anchor_time": self._anchor_time,
                "next_window": self._next_window,
                "fires": self.fires,
                "floor_oid": floor_oid}

    def restore(self, state: dict) -> None:
        """Reposition from a checkpoint snapshot: the processing cursor
        rewinds to the next full window's first basic window
        (``_next_bw = _next_window``) so the executor — whose cache
        died with the process — sees every still-needed basic window
        again."""
        if state.get("kind") != "tracker":
            raise WindowError(
                f"cursor snapshot kind {state.get('kind')!r} does not "
                f"match a BasicWindowTracker")
        self._anchor_oid = int(state["anchor_oid"])
        self._anchor_time = int(state["anchor_time"])
        self._next_window = int(state["next_window"])
        self._next_bw = self._next_window
        self.fires = int(state["fires"])
        floor = int(state["floor_oid"])
        self.sub.read_upto = floor
        self.sub.released_upto = floor

    def __repr__(self) -> str:
        return (f"BasicWindowTracker({self.basket.name}, n={self.n_basic},"
                f" next_bw={self._next_bw}, next_win={self._next_window})")
