"""Clocks for the streaming runtime.

All DataCell components take time from a :class:`Clock` so the whole
system can run deterministically under :class:`SimulatedClock` (tests,
benchmarks) or live under :class:`WallClock` (interactive examples).
Times are integer milliseconds.
"""

from __future__ import annotations

import time

from repro.errors import StreamError


class Clock:
    """Abstract time source (milliseconds)."""

    def now(self) -> int:
        raise NotImplementedError


class SimulatedClock(Clock):
    """A manually advanced clock; never moves on its own."""

    def __init__(self, start: int = 0):
        self._now = int(start)

    def now(self) -> int:
        return self._now

    def advance(self, delta_ms: int) -> int:
        if delta_ms < 0:
            raise StreamError("cannot advance the clock backwards")
        self._now += int(delta_ms)
        return self._now

    def set(self, instant_ms: int) -> None:
        if instant_ms < self._now:
            raise StreamError("cannot move the clock backwards")
        self._now = int(instant_ms)


class WallClock(Clock):
    """Real time, anchored so the stream starts near zero."""

    def __init__(self):
        self._anchor = time.monotonic()

    def now(self) -> int:
        return int((time.monotonic() - self._anchor) * 1000)
