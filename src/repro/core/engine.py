"""The DataCell engine facade: SQL in, streams through, results out.

One object wires the whole architecture of Figure 1 together: the
catalog and persistent tables, stream baskets, receptors, the SQL
compiler + optimizer stack, the continuous-plan rewriter, factories, the
Petri-net scheduler and per-query emitters.

Typical use::

    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sid INT, temp FLOAT)")
    q = engine.register_continuous(
        "SELECT sid, avg(temp) FROM sensors [RANGE 100 SLIDE 20] "
        "GROUP BY sid")
    engine.attach_source("sensors", RateSource(rows, rate=1000))
    engine.run_until_drained()
    print(engine.results(q.name).latest().pretty())
"""

from __future__ import annotations

import json
import os
import time
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.core.basket import Basket
from repro.core.clock import Clock, SimulatedClock
from repro.core.emitter import CallbackSink, CollectingSink, Emitter, Sink
from repro.core.factory import (DeltaFactory, Factory, IncrementalFactory,
                                ReevalFactory)
from repro.core.incremental import (IncrementalAnalysis,
                                    UnsupportedIncremental,
                                    analyze_incremental)
from repro.core.monitor import Monitor
from repro.core.receptor import Receptor, SocketReceptor
from repro.core.recycler import DEFAULT_BUDGET_BYTES, Recycler
from repro.core.rewriter import rewrite_to_continuous
from repro.core.scheduler import PetriNetScheduler
from repro.core.windows import BasicWindowTracker, WindowSpec, WindowState
from repro.errors import (BindError, CatalogError, ReplayGap, StoreError,
                          StreamError)
from repro.mal.bat import BAT
from repro.mal.compiler import compile_plan
from repro.mal.fingerprint import (cached_program_fingerprint,
                                   fingerprint_cache_stats)
from repro.mal.interpreter import MALContext, MALInterpreter
from repro.mal.program import MALProgram
from repro.mal.relation import Relation
from repro.sql import ast
from repro.sql.binder import Binder, Scope
from repro.sql.optimizer import Optimizer
from repro.sql.parser import parse, parse_script
from repro.sql.plan import PlanNode, find_stream_scans
from repro.sql.planner import Planner
from repro.storage.catalog import Catalog
from repro.storage.persistence import (load_catalog, load_queries,
                                       save_catalog, save_queries)
from repro.storage.schema import Schema
from repro.store import (DURABILITY_MODES, FaultInjector,
                         PagedWindowBinder, StreamLog)
from repro.store.log import MANIFEST
from repro.streams.source import StreamSource


class ContinuousQuery:
    """A registered standing query and all its runtime attachments."""

    def __init__(self, name: str, sql_text: str, plan: PlanNode,
                 program: MALProgram, continuous_program: MALProgram,
                 mode: str, factory: Factory, emitter: Emitter,
                 sink: CollectingSink, streams: List[str],
                 incremental_analysis: Optional[IncrementalAnalysis]):
        self.name = name
        self.sql_text = sql_text
        self.plan = plan
        self.program = program
        self.continuous_program = continuous_program
        self.mode = mode
        self.factory = factory
        self.emitter = emitter
        self.sink = sink
        self.streams = streams
        self.incremental_analysis = incremental_analysis
        # name of the output-basket stream, when results are chained
        self.output_stream: Optional[str] = None
        # registration knobs, kept for snapshot round-trips
        self.knobs: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"ContinuousQuery({self.name}, mode={self.mode})"


class DataCellEngine:
    """The top-level system object (one MonetDB/DataCell instance)."""

    def __init__(self, clock: Optional[Clock] = None,
                 recycler_enabled: bool = True,
                 recycler_budget_bytes: int = DEFAULT_BUDGET_BYTES,
                 recycler_verify: bool = False,
                 recycler_policy: str = "benefit",
                 recycler_min_cost_ms: float = 0.0,
                 recycler_autotune: bool = False,
                 recycler_autotune_ceiling: Optional[int] = None,
                 parallel_workers: Optional[int] = None,
                 compile_plans: bool = True,
                 interp_profile: bool = False,
                 data_dir: Optional[str] = None,
                 durability: str = "async",
                 segment_rows: int = 4096,
                 checkpoint_interval_s: float = 2.0,
                 log_inline: bool = False,
                 retain_ms: Optional[int] = None,
                 retain_bytes: Optional[int] = None):
        """``parallel_workers`` sizes the scheduler's firing pool:
        ``None``/``1`` (default) keeps the serial cascade — the
        deterministic path every SimulatedClock run gets unless
        parallelism is explicitly requested — ``0`` or ``"auto"`` uses
        one worker per core, any other int is a literal thread count.
        Emitted results are byte-identical either way.

        ``recycler_policy`` selects the cache eviction policy:
        ``"benefit"`` (default) ranks entries by benefit density
        (recompute cost x reuse frequency per byte, the MonetDB
        Recycler heuristic), ``"lru"`` is pure recency.

        ``recycler_min_cost_ms`` is the cache admission floor: entries
        whose recorded recompute cost is below it are never cached
        (cheap intermediates cost more in budget pressure than their
        reuse saves).

        ``recycler_autotune`` turns on the budget autotuner: the
        scheduler grows ``budget_bytes`` (up to
        ``recycler_autotune_ceiling``, default 64 MB) when eviction
        churn outpaces cache hits, and shrinks it back toward the
        configured budget when the cache sits idle — so an
        under-provisioned budget cannot make recycler-on slower than
        recycler-off.

        ``compile_plans`` (default on) slot-compiles each registered
        continuous plan into pre-bound thunks at registration
        (:func:`repro.mal.compiler.compile_program`); firing then skips
        the interpreter's per-instruction dispatch entirely.
        ``interp_profile`` additionally records per-opcode cumulative
        wall time on every firing (the ``.interp`` monitor pane).

        ``data_dir`` turns on the durable stream log
        (:mod:`repro.store`): every admitted tuple is mirrored to an
        append-only segmented log per stream, the catalog and standing-
        query definitions are checkpointed there, and constructing an
        engine over an existing ``data_dir`` *recovers* — baskets,
        window cursors and emit stamps are rebuilt so emissions resume
        byte-identically to an uninterrupted run. ``durability`` picks
        the write discipline: ``"async"`` (default) group-commits with
        one flush per group, ``"fsync"`` additionally fsyncs,
        ``"off"`` disables logging even with a ``data_dir``.
        ``checkpoint_interval_s`` paces the periodic checkpoint driven
        from :meth:`step` (and the network server's scheduler loop);
        ``log_inline`` persists synchronously inside each append — the
        deterministic mode crash tests drive.

        ``retain_ms`` / ``retain_bytes`` bound how much durable history
        each stream log keeps: after every periodic checkpoint, sealed
        segments whose newest arrival is older than ``retain_ms`` (or
        that push the log past ``retain_bytes``, oldest first) are
        dropped — never past what live baskets or registered query
        cursors still need. The log's ``durable_floor`` advances;
        replay below it lags to the floor (subscriptions) or raises
        :class:`~repro.errors.ReplayGap` (``from_offset``
        registration). Factories window over whatever the log retains
        without rehydrating it: every durable basket carries a
        :class:`~repro.store.paging.PagedWindowBinder` serving vacuumed
        history as zero-copy segment views."""
        self.clock = clock if clock is not None else SimulatedClock()
        self.catalog = Catalog()
        self.recycler = Recycler(recycler_budget_bytes,
                                 enabled=recycler_enabled,
                                 verify=recycler_verify,
                                 policy=recycler_policy,
                                 min_cost_ms=recycler_min_cost_ms,
                                 autotune=recycler_autotune,
                                 autotune_ceiling_bytes=(
                                     recycler_autotune_ceiling))
        self.compile_plans = bool(compile_plans)
        self.interp_profile = bool(interp_profile)
        self.scheduler = PetriNetScheduler(
            self.clock,
            recycler=self.recycler if recycler_enabled else None,
            parallel_workers=parallel_workers)
        self.monitor = Monitor(self)
        self._receptors: Dict[str, List[Receptor]] = {}
        self._queries: Dict[str, ContinuousQuery] = {}
        self._qcounter = 0
        # the attached network edges, when serving: the framed
        # protocol server and the Postgres wire-protocol front end
        self.net_edge = None
        self.pg_edge = None

        # -- durability (repro.store) ----------------------------------
        if durability not in DURABILITY_MODES:
            raise StreamError(
                f"unknown durability mode {durability!r} "
                f"(expected one of {DURABILITY_MODES})")
        self.data_dir = data_dir
        self.durability = durability if data_dir is not None else "off"
        self.segment_rows = int(segment_rows)
        self.checkpoint_interval_s = float(checkpoint_interval_s)
        self.log_inline = bool(log_inline)
        self.retain_ms = retain_ms
        self.retain_bytes = retain_bytes
        self.retention_rows_dropped = 0
        self._logs: Dict[str, StreamLog] = {}
        self._fault = FaultInjector.from_env()
        self.checkpoints = 0
        self.last_checkpoint_ms = 0.0
        self.last_checkpoint_error: Optional[BaseException] = None
        self.recovered = False
        self._recovering = False
        self._last_ckpt = time.monotonic()
        if self.durable and self._has_prior_state():
            self._recover()

    @property
    def durable(self) -> bool:
        return self.durability != "off"

    def close(self) -> None:
        """Checkpoint (when durable), close the stream logs, and
        release the scheduler's worker pool."""
        if self.durable and self._logs:
            try:
                self.checkpoint()
            except StoreError:
                pass  # a failed writer must not block shutdown
        for log in self._logs.values():
            log.close()
        self._logs = {}
        self.scheduler.shutdown()

    def __enter__(self) -> "DataCellEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------

    def now(self) -> int:
        return self.clock.now()

    # ------------------------------------------------------------------
    # SQL entry point (DDL, DML, one-time queries)
    # ------------------------------------------------------------------

    def execute(self, sql: str) -> Union[Relation, str, int]:
        """Run one statement. SELECTs return a Relation; DDL returns a
        confirmation string; INSERT returns the row count."""
        stmt = parse(sql)
        return self._execute_stmt(stmt)

    def execute_script(self, sql: str) -> List[Union[Relation, str, int]]:
        return [self._execute_stmt(s) for s in parse_script(sql)]

    def execute_statement(self, stmt: ast.Statement
                          ) -> Union[Relation, str, int]:
        """Run one already-parsed statement — for front ends (the pg
        wire session) that parse once to classify and must not
        re-parse to execute."""
        return self._execute_stmt(stmt)

    def _execute_stmt(self, stmt: ast.Statement):
        if isinstance(stmt, (ast.SelectStmt, ast.UnionStmt)):
            return self._one_time_select(stmt)
        if isinstance(stmt, ast.CreateTableStmt):
            self.catalog.create_table(stmt.name,
                                      Schema.parse(stmt.columns))
            return f"CREATE TABLE {stmt.name}"
        if isinstance(stmt, ast.CreateStreamStmt):
            self.create_stream(stmt.name, Schema.parse(stmt.columns))
            return f"CREATE STREAM {stmt.name}"
        if isinstance(stmt, ast.CreateIndexStmt):
            self.catalog.table(stmt.table).create_index(stmt.column,
                                                        stmt.kind)
            return f"CREATE INDEX on {stmt.table}({stmt.column})"
        if isinstance(stmt, ast.DropStmt):
            if stmt.kind == "table":
                self.catalog.drop_table(stmt.name)
            else:
                self.drop_stream(stmt.name)
            return f"DROP {stmt.kind.upper()} {stmt.name}"
        if isinstance(stmt, ast.InsertStmt):
            return self._insert(stmt)
        if isinstance(stmt, ast.DeleteStmt):
            return self._delete(stmt)
        if isinstance(stmt, ast.UpdateStmt):
            return self._update(stmt)
        if isinstance(stmt, ast.ExplainStmt):
            plan = Optimizer().optimize(
                Planner(self.catalog).plan(stmt.statement))
            program = compile_plan(plan, "user.explain")
            return plan.pretty() + "\n\n" + program.pretty()
        raise BindError(f"cannot execute statement {stmt!r}")

    def _match_positions(self, table, where: Optional[ast.Expr]):
        """Row positions of *table* matching *where* (all when None)."""
        import numpy as np

        from repro.mal import kernel
        from repro.mal.bat import all_candidates

        if where is None:
            return all_candidates(len(table)), None, None
        scope = Scope()
        scope.add_source(table.name, table.schema)
        binder = Binder(scope)
        predicate = binder.bind(where)
        rel = table.scan().renamed(
            [f"{table.name}.{n}" for n in table.schema.names])
        mask = predicate.evaluate(rel)
        return kernel.mask_select(mask), rel, scope

    def _delete(self, stmt: ast.DeleteStmt) -> int:
        table = self.catalog.table(stmt.table)
        positions, _rel, _scope = self._match_positions(table, stmt.where)
        return table.delete_positions(positions)

    def _update(self, stmt: ast.UpdateStmt) -> int:
        from repro.mal import kernel

        table = self.catalog.table(stmt.table)
        positions, rel, scope = self._match_positions(table, stmt.where)
        if rel is None:
            scope = Scope()
            scope.add_source(table.name, table.schema)
            rel = table.scan().renamed(
                [f"{table.name}.{n}" for n in table.schema.names])
        binder = Binder(scope)
        selected = rel.take(positions)
        # evaluate all right-hand sides against the pre-update rows so
        # SET a = b, b = a swaps correctly
        new_values = []
        for column, expr in stmt.assignments:
            target_type = table.schema.type_of(column)
            bound = binder.bind(expr)
            values = bound.evaluate(selected)
            if values.dtype != target_type:
                values = kernel.calc_cast(values, target_type)
            new_values.append((column, values))
        for column, values in new_values:
            table.update_column(column, positions, values)
        return len(positions)

    def query(self, sql: str) -> Relation:
        """One-time SELECT (over tables and/or current basket contents)."""
        result = self.execute(sql)
        if not isinstance(result, Relation):
            raise BindError("query() expects a SELECT statement")
        return result

    def _one_time_select(self, stmt) -> Relation:
        plan = Optimizer().optimize(Planner(self.catalog).plan(stmt))
        program = compile_plan(plan, "user.onetime")
        ctx = MALContext(self.catalog,
                         stream_reader=self._basket_snapshot)
        return MALInterpreter(ctx).run(program)

    def _basket_snapshot(self, name: str) -> Relation:
        return self.basket(name).relation()

    def _insert(self, stmt: ast.InsertStmt) -> int:
        target_is_stream = self.catalog.is_stream(stmt.table)
        schema = self.catalog.schema_of(stmt.table)
        columns = stmt.columns or schema.names
        if stmt.select is not None:
            rel = self._one_time_select(stmt.select)
            rows = rel.to_rows()
        else:
            binder = Binder(Scope())
            rows = []
            for row_exprs in stmt.rows:
                row = []
                for expr in row_exprs:
                    bound = binder.bind(expr)
                    row.append(bound.const_value())
                rows.append(row)
        if list(columns) != schema.names:
            index = {c: i for i, c in enumerate(columns)}
            full_rows = []
            for row in rows:
                if len(row) != len(columns):
                    raise BindError("INSERT: wrong number of values")
                full_rows.append([
                    row[index[c]] if c in index else None
                    for c in schema.names])
            rows = full_rows
        if target_is_stream:
            return self.basket(stmt.table).append_rows(rows, self.now())
        self.catalog.table(stmt.table).insert_rows(rows)
        return len(rows)

    # ------------------------------------------------------------------
    # streams
    # ------------------------------------------------------------------

    def create_stream(self, name: str, schema: Schema) -> Basket:
        self.catalog.create_stream(name, schema)
        basket = Basket(name, schema)
        self.scheduler.add_basket(basket)
        self._receptors[basket.name] = []
        if self.durable:
            log = self._open_log(basket.name, schema)
            if log.next_offset > basket.next_oid:
                # a stale log dir from a dropped/recreated stream whose
                # history this fresh basket does not carry — discard it
                log.truncate_to(basket.next_oid)
            self._attach_durable(basket, log)
            if not self._recovering:
                self.checkpoint()
        return basket

    def drop_stream(self, name: str) -> None:
        name = name.lower()
        bound = [q.name for q in self._queries.values()
                 if name in q.streams]
        if bound:
            raise StreamError(
                f"stream {name!r} is bound by queries {bound}")
        self.catalog.drop_stream(name)
        self.scheduler.remove_basket(name)
        self.scheduler.receptors = [
            r for r in self.scheduler.receptors
            if r.basket.name != name]
        self._receptors.pop(name, None)
        log = self._logs.pop(name, None)
        if log is not None:
            log.close()
        if self.durable:
            self.checkpoint()

    def basket(self, name: str) -> Basket:
        try:
            return self.scheduler.baskets[name.lower()]
        except KeyError:
            raise CatalogError(f"no stream {name!r}") from None

    def attach_source(self, stream: str, source: StreamSource,
                      name: Optional[str] = None) -> Receptor:
        """Create a receptor pumping *source* into the stream's basket."""
        basket = self.basket(stream)
        rname = name or f"{basket.name}_r{len(self._receptors[basket.name])}"
        receptor = Receptor(rname, basket, source)
        self._receptors[basket.name].append(receptor)
        self.scheduler.add_receptor(receptor)
        return receptor

    def add_socket_receptor(self, stream: str,
                            name: Optional[str] = None,
                            max_pending: int = 64,
                            policy: str = "block",
                            block_timeout_s: float = 5.0
                            ) -> SocketReceptor:
        """Register a network-edge receptor for *stream*: connection
        threads offer batches into its bounded admission queue; the
        scheduler drains it. One per connected producer."""
        basket = self.basket(stream)
        rname = name or (f"{basket.name}_net"
                         f"{len(self._receptors[basket.name])}")
        receptor = SocketReceptor(rname, basket, max_pending=max_pending,
                                  policy=policy,
                                  block_timeout_s=block_timeout_s)
        self._receptors[basket.name].append(receptor)
        self.scheduler.add_receptor(receptor)
        return receptor

    def remove_receptor(self, receptor: Receptor) -> None:
        """Detach *receptor* from the scheduler and the stream's
        receptor list (the basket and its tuples stay)."""
        self.scheduler.receptors = [
            r for r in self.scheduler.receptors if r is not receptor]
        bucket = self._receptors.get(receptor.basket.name)
        if bucket is not None:
            self._receptors[receptor.basket.name] = [
                r for r in bucket if r is not receptor]

    def feed(self, stream: str, rows: Sequence[Sequence[Any]]) -> int:
        """Push rows into a stream right now (external event driver)."""
        return self.basket(stream).append_rows(rows, self.now())

    def pause_stream(self, name: str) -> None:
        self.basket(name)  # validate
        for receptor in self._receptors[name.lower()]:
            receptor.pause()

    def resume_stream(self, name: str) -> None:
        self.basket(name)
        for receptor in self._receptors[name.lower()]:
            receptor.resume()

    # ------------------------------------------------------------------
    # continuous queries
    # ------------------------------------------------------------------

    def register_continuous(self, sql: str, name: Optional[str] = None,
                            mode: str = "auto", min_batch: int = 1,
                            max_delay_ms: Optional[int] = None,
                            cache_enabled: bool = True,
                            sink: Optional[Sink] = None,
                            output_stream: Optional[str] = None,
                            collect_max_batches: Optional[int] = None,
                            from_start: bool = False,
                            from_offset: Optional[int] = None
                            ) -> ContinuousQuery:
        """Register a standing query.

        ``mode``: ``"reeval"`` forces full re-evaluation per firing;
        ``"incremental"`` forces basic-window processing (raises
        :class:`UnsupportedIncremental` when the plan shape does not
        allow it); ``"delta"`` requests Z-set delta execution — O(Δ)
        work per slide with weighted retraction state — and silently
        falls back through incremental to reeval for unsupported
        shapes; ``"auto"`` picks incremental for sliding windows when
        possible.

        ``output_stream`` materializes the query's results as a new
        stream (an *output basket*): each firing appends its partial
        result there, and further continuous queries can consume it —
        multi-stage query networks, as in the paper's Figure 3.

        ``collect_max_batches`` bounds the query's built-in
        :class:`CollectingSink` ring (oldest batches dropped once
        full) — recommended for long-lived live/server deployments.

        ``from_start`` / ``from_offset`` start the query's stream
        cursors in the *past* instead of at the head: history still in
        basket memory is windowed directly, and history already
        vacuumed is *paged* out of the stream's durable log — the
        basket's :class:`~repro.store.paging.PagedWindowBinder` serves
        it as zero-copy segment views, so replaying a long log never
        materializes the whole range (requires a ``data_dir`` engine).
        Offsets are basket oids — the same coordinate replay
        subscribers and checkpoints use. ``from_start`` starts at the
        oldest offset the log still holds (the retention floor); an
        explicit ``from_offset`` below that floor raises
        :class:`~repro.errors.ReplayGap` — serving only the surviving
        suffix would silently claim history retention has discarded.
        Without a log, offsets clamp to the retained basket prefix as
        before.
        """
        stmt = parse(sql)
        if not isinstance(stmt, (ast.SelectStmt, ast.UnionStmt)):
            raise BindError("continuous queries must be SELECT statements")
        if name is None:
            self._qcounter += 1
            name = f"q{self._qcounter}"
        name = name.lower()
        if name in self._queries:
            raise StreamError(f"query {name!r} already registered")

        plan = Optimizer().optimize(Planner(self.catalog).plan(stmt))
        scans = find_stream_scans(plan)
        if not scans:
            raise BindError(
                "continuous query references no stream; use execute() "
                "for one-time queries")
        stream_names = [s.stream_name for s in scans]
        if len(set(stream_names)) != len(stream_names):
            raise StreamError(
                "a stream may appear only once per continuous query")
        specs = {s.stream_name: WindowSpec.from_clause(s.window)
                 for s in scans}

        program = compile_plan(plan, f"user.{name}")
        continuous_program = rewrite_to_continuous(
            program, stream_names, f"datacell.{name}")

        analysis, resolved_mode = self._resolve_mode(plan, specs, mode)

        emitter = Emitter(name)
        collecting = CollectingSink(max_batches=collect_max_batches)
        emitter.add_sink(collecting)
        if sink is not None:
            emitter.add_sink(sink)
        out_sink = None
        if output_stream is not None:
            from repro.core.emitter import BasketSink

            if self.catalog.is_stream(output_stream):
                # reuse a pre-existing stream (snapshot restore) when
                # the schema matches the query's output
                out_basket = self.basket(output_stream)
                if out_basket.schema.names != plan.schema.names:
                    raise StreamError(
                        f"output stream {output_stream!r} exists with "
                        f"a different schema")
            else:
                out_basket = self.create_stream(output_stream,
                                                plan.schema)
            out_sink = BasketSink(
                out_basket,
                recycler=self.recycler
                if self.recycler.enabled else None)
            emitter.add_sink(out_sink)

        baskets = {s: self.basket(s) for s in stream_names}
        starts: Optional[Dict[str, int]] = None
        if from_start or from_offset is not None:
            starts = {}
            for s, basket in baskets.items():
                target = 0 if from_start else max(0, int(from_offset))
                if target < basket.first_oid:
                    if basket.pager is not None:
                        # log-resident history is paged, not
                        # rehydrated: the subscription starts below
                        # first_oid and window reads splice segment
                        # views in. An explicit offset below the
                        # retention floor is a gap the caller must
                        # acknowledge; from_start means "oldest
                        # available" and starts at the floor.
                        floor = basket.history_floor()
                        if from_offset is not None and target < floor:
                            raise ReplayGap(
                                f"stream {s!r}: requested offset "
                                f"{target} is below the retention "
                                f"floor {floor}; re-request at or "
                                f"above the floor (or use from_start "
                                f"for the oldest available history)",
                                stream=s, requested=target,
                                floor=floor)
                    else:
                        # no pager (durability off): pull the gap back
                        # into memory, tolerating a short log only for
                        # from_start ("oldest available") requests
                        self._rehydrate_stream(
                            s, target, allow_gap=from_start)
                # subscribe() clamps to what is actually readable
                starts[s] = target
        factory = self._build_factory(
            name, plan, continuous_program, analysis, resolved_mode,
            specs, baskets, emitter, min_batch, max_delay_ms,
            cache_enabled, starts=starts)
        if out_sink is not None:
            # chained networks: let the output basket stamp each
            # appended range with the producing plan's emit fingerprint
            # (factories without stamps return None and append plain)
            out_sink.bind_producer(factory)
        self.scheduler.add_factory(factory)
        # census for the recycler's sharing-based admission filter:
        # instruction fingerprints carried by fewer than two registered
        # consumers can never produce a cache hit and are skipped
        if factory.recycle_fps:
            self.recycler.retain_fps(factory.recycle_fps)

        query = ContinuousQuery(name, sql, plan, program,
                                continuous_program, resolved_mode,
                                factory, emitter, collecting,
                                stream_names, analysis)
        query.output_stream = output_stream
        query.knobs = {"mode": mode, "min_batch": min_batch,
                       "max_delay_ms": max_delay_ms,
                       "cache_enabled": cache_enabled,
                       "collect_max_batches": collect_max_batches}
        self._queries[name] = query
        if self.durable and not self._recovering:
            self.checkpoint()  # definitions must survive a crash
        return query

    def _resolve_mode(self, plan: PlanNode,
                      specs: Dict[str, WindowSpec], mode: str):
        """Pick the execution mode for one continuous query.

        ``"delta"`` requests Z-set delta execution and silently walks
        the fallback ladder delta → incremental → reeval when the plan
        shape is unsupported (both delta and incremental need
        :func:`analyze_incremental` to succeed; incremental additionally
        needs ``size % slide == 0``, which delta does not).
        """
        if mode not in ("auto", "reeval", "incremental", "delta"):
            raise StreamError(f"unknown execution mode {mode!r}")
        if mode == "reeval":
            return None, "reeval"
        from repro.errors import WindowError
        try:
            analysis = analyze_incremental(plan)
        except UnsupportedIncremental:
            if mode == "incremental":
                raise
            # delta/auto ladder bottoms out at reeval: the shapes delta
            # supports are exactly the analyzable ones
            return None, "reeval"
        if mode == "delta":
            return analysis, "delta"
        try:
            for stream in specs:
                specs[stream].basic_window_count  # divisibility check
        except WindowError as exc:
            if mode == "incremental":
                raise UnsupportedIncremental(str(exc)) from exc
            return None, "reeval"
        if mode == "auto" and not any(s.is_sliding or s.is_tumbling
                                      for s in specs.values()):
            return None, "reeval"
        return analysis, "incremental"

    def _build_factory(self, name, plan, continuous_program, analysis,
                       mode, specs, baskets, emitter, min_batch,
                       max_delay_ms, cache_enabled,
                       starts: Optional[Dict[str, int]] = None
                       ) -> Factory:
        now = self.now()

        def _subscribe(stream, basket):
            """Subscribe at the head — or, when replaying, at the
            requested historical offset, anchoring time windows at the
            first replayed tuple's arrival instant."""
            start = starts.get(stream) if starts else None
            sub = basket.subscribe(name, start_oid=start)
            anchor = now
            if start is not None and sub.read_upto < basket.next_oid:
                arr, (lo, _hi) = basket.arrival_slice(
                    sub.read_upto, sub.read_upto + 1)
                if len(arr) and lo == sub.read_upto:
                    anchor = int(arr[0])
            return sub, anchor

        # content identity of this plan's emissions; shared by every
        # mode so chained consumers recognise equal payloads regardless
        # of how the producer executed
        plan_fp = cached_program_fingerprint(continuous_program) \
            if self.recycler.enabled else None
        if mode == "incremental":
            trackers = {}
            for stream, basket in baskets.items():
                sub, anchor = _subscribe(stream, basket)
                trackers[stream] = BasicWindowTracker(
                    specs[stream], basket, sub, anchor_time=anchor)
            return IncrementalFactory(name, analysis, trackers, baskets,
                                      self.catalog, emitter,
                                      cache_enabled, plan_fp=plan_fp)
        window_states = {}
        for stream, basket in baskets.items():
            sub, anchor = _subscribe(stream, basket)
            window_states[stream] = WindowState(specs[stream], basket,
                                                sub, anchor_time=anchor)
        if mode == "delta":
            return DeltaFactory(name, analysis, window_states, baskets,
                                self.catalog, emitter, plan_fp=plan_fp)
        return ReevalFactory(name, continuous_program, plan,
                             window_states, baskets, self.catalog,
                             emitter, min_batch, max_delay_ms,
                             recycler=self.recycler
                             if self.recycler.enabled else None,
                             compiled=self.compile_plans,
                             profile=self.interp_profile)

    def remove_query(self, name: str) -> None:
        name = name.lower()
        query = self._queries.pop(name, None)
        if query is None:
            raise StreamError(f"no continuous query {name!r}")
        self.scheduler.remove_factory(name)
        if query.factory.recycle_fps:
            self.recycler.release_fps(query.factory.recycle_fps)
        for stream in query.streams:
            self.basket(stream).unsubscribe(name)
            self.basket(stream).vacuum()
        if self.durable:
            self.checkpoint()

    def continuous_query(self, name: str) -> ContinuousQuery:
        try:
            return self._queries[name.lower()]
        except KeyError:
            raise StreamError(f"no continuous query {name!r}") from None

    def queries(self) -> List[ContinuousQuery]:
        return list(self._queries.values())

    def pause_query(self, name: str) -> None:
        query = self.continuous_query(name)
        query.factory.pause()
        for stream in query.streams:
            for sub in self.basket(stream).subscriptions():
                if sub.name == name:
                    sub.paused = True

    def resume_query(self, name: str) -> None:
        query = self.continuous_query(name)
        query.factory.resume()
        for stream in query.streams:
            for sub in self.basket(stream).subscriptions():
                if sub.name == name:
                    sub.paused = False

    def subscribe(self, query_name: str,
                  callback: Callable[[Relation, int], Any]) -> None:
        """Attach a client callback to a standing query's emitter."""
        query = self.continuous_query(query_name)
        query.emitter.add_sink(CallbackSink(callback))

    def results(self, query_name: str) -> CollectingSink:
        return self.continuous_query(query_name).sink

    # ------------------------------------------------------------------
    # driving the net
    # ------------------------------------------------------------------

    def step(self, advance_ms: int = 0) -> Dict[str, int]:
        if advance_ms:
            if not isinstance(self.clock, SimulatedClock):
                raise StreamError("advance_ms needs a SimulatedClock")
            self.clock.advance(advance_ms)
        counters = self.scheduler.step()
        self.maybe_checkpoint()
        return counters

    def run_for(self, duration_ms: int, step_ms: int = 10
                ) -> Dict[str, int]:
        return self.scheduler.run_for(duration_ms, step_ms)

    def run_until_drained(self, max_steps: int = 100000) -> Dict[str, int]:
        return self.scheduler.run_until_drained(max_steps)

    def network_stats(self) -> Dict[str, Dict]:
        """The scheduler's Petri-net counters, plus an ``"interp"``
        section (plan-execution counters, :meth:`interp_stats`) and a
        ``"net"`` section (per-connection ingest/deliver/shed/blocked
        counters) when a network edge — a
        :class:`~repro.net.server.DataCellServer` — is attached."""
        stats = self.scheduler.network_stats()
        stats["interp"] = self.interp_stats()
        if self.net_edge is not None:
            stats["net"] = self.net_edge.net_stats()
        if self.pg_edge is not None:
            stats["pg"] = self.pg_edge.pg_stats()
        if self.durable:
            stats["log"] = self.log_stats()
        return stats

    def interp_stats(self) -> Dict[str, Any]:
        """Plan-execution counters: slot-compiler activity, digest-
        cache hit rates, emit-stamp amortization, per-opcode profile
        (when ``interp_profile`` is on) and the autotuner's budget
        trajectory."""
        from repro.mal.compiler import compile_stats

        out: Dict[str, Any] = {}
        out.update(compile_stats())
        out.update(fingerprint_cache_stats())
        compiled = 0
        interpreted = 0
        stamps = 0
        profile: Dict[str, List[float]] = {}
        for factory in self.scheduler.factories:
            if getattr(factory, "compiled", None) is not None:
                compiled += 1
            elif isinstance(factory, ReevalFactory):
                interpreted += 1
            stamper = getattr(factory, "_stamper", None)
            if stamper is not None:
                stamps += stamper.stamps
            for opcode, (calls, ms) in getattr(
                    factory, "opcode_profile", {}).items():
                cell = profile.setdefault(opcode, [0, 0.0])
                cell[0] += calls
                cell[1] += ms
        out["factories_compiled"] = compiled
        out["factories_interpreted"] = interpreted
        out["emit_stamps"] = stamps
        out["profile_enabled"] = int(self.interp_profile)
        out["opcode_profile"] = {
            op: {"calls": int(calls), "ms": round(ms, 3)}
            for op, (calls, ms) in sorted(
                profile.items(), key=lambda kv: -kv[1][1])}
        out["autotune"] = int(self.recycler.autotune)
        out["budget_bytes"] = self.recycler.budget_bytes
        out["budget_grows"] = self.recycler.budget_grows
        out["budget_shrinks"] = self.recycler.budget_shrinks
        out["budget_trajectory"] = list(
            self.recycler.budget_trajectory)
        return out

    # ------------------------------------------------------------------
    # durability: stream logs, checkpoints, crash recovery
    # ------------------------------------------------------------------

    def _stream_log_dir(self, name: str) -> str:
        return os.path.join(self.data_dir, "streams", name.lower())

    def _state_path(self) -> str:
        return os.path.join(self.data_dir, "state.json")

    def _catalog_dir(self) -> str:
        return os.path.join(self.data_dir, "catalog")

    def _open_log(self, name: str, schema: Schema) -> StreamLog:
        log = StreamLog(self._stream_log_dir(name), name, schema,
                        segment_rows=self.segment_rows,
                        durability=self.durability,
                        inline=self.log_inline,
                        fault=self._fault,
                        retain_ms=self.retain_ms,
                        retain_bytes=self.retain_bytes)
        self._logs[name.lower()] = log
        return log

    def _attach_durable(self, basket: Basket, log: StreamLog) -> None:
        """Bind *log* and a paged-history binder to *basket* — from
        here on window reads below the vacuum floor page log segments
        instead of clamping to the retained prefix."""
        basket.attach_log(log)
        basket.attach_pager(PagedWindowBinder(log, basket.schema))

    def stream_log(self, name: str) -> Optional[StreamLog]:
        return self._logs.get(name.lower())

    def _has_prior_state(self) -> bool:
        if os.path.exists(self._state_path()):
            return True
        if os.path.exists(os.path.join(self._catalog_dir(),
                                       "catalog.json")):
            return True
        streams_dir = os.path.join(self.data_dir, "streams")
        if os.path.isdir(streams_dir):
            for entry in os.listdir(streams_dir):
                if os.path.exists(os.path.join(streams_dir, entry,
                                               MANIFEST)):
                    return True
        return False

    def checkpoint(self) -> None:
        """Persist a consistent recovery point under ``data_dir``.

        Order matters: the stream logs are flushed *first*, so every
        oid the saved cursors and basket bounds reference is durable
        before ``state.json`` swings into place (tmp + atomic rename).
        A crash between the two leaves the previous state file valid
        against a longer log — recovery replays the extra tail.
        """
        if not self.durable:
            return
        t0 = time.perf_counter()
        for log in self._logs.values():
            log.flush()
        save_catalog(self.catalog, self._catalog_dir())
        qdefs = []
        for query in self._queries.values():
            entry = dict(query.knobs)
            entry.update({"name": query.name, "sql": query.sql_text,
                          "output_stream": query.output_stream})
            qdefs.append(entry)
        save_queries(qdefs, self.data_dir)
        baskets = {}
        for name, basket in self.scheduler.baskets.items():
            baskets[name] = {
                "first_oid": basket.first_oid,
                "next_oid": basket.next_oid,
                "total_in": basket.total_in,
                "total_dropped": basket.total_dropped,
                "high_water": basket.high_water,
                "stamps": [[lo, hi, fp]
                           for lo, hi, fp in basket.range_stamps()]}
        cursors = {q.name: {"mode": q.mode,
                            "streams": q.factory.cursor_snapshot()}
                   for q in self._queries.values()}
        state = {"version": 1, "now": self.now(),
                 "baskets": baskets, "queries": cursors}
        tmp = self._state_path() + ".tmp"
        with open(tmp, "w") as f:
            json.dump(state, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, self._state_path())
        for log in self._logs.values():
            log.sync_manifest()
        self.checkpoints += 1
        self.last_checkpoint_ms = (time.perf_counter() - t0) * 1000.0
        self.last_checkpoint_error = None
        self._last_ckpt = time.monotonic()

    def maybe_checkpoint(self) -> bool:
        """Periodic checkpoint driver (called per :meth:`step` and by
        the network server's scheduler loop). A failed log writer is
        recorded — not raised — so the serving loop stays up."""
        if not self.durable or self._recovering:
            return False
        if time.monotonic() - self._last_ckpt < self.checkpoint_interval_s:
            return False
        try:
            self.checkpoint()
        except StoreError as exc:
            self.last_checkpoint_error = exc
            self._last_ckpt = time.monotonic()  # do not retry hot
            return False
        # retention rides checkpoint pacing: the fresh checkpoint's
        # cursors are exactly what the protect floor defends, so
        # truncating right after it can never strand a restored cursor
        # below the floor
        self.apply_retention()
        return True

    def apply_retention(self) -> Dict[str, int]:
        """Enforce ``retain_ms``/``retain_bytes`` on every stream log.

        Each log's protect floor is the oldest offset anything live
        still needs: the basket's retained prefix and every registered
        subscription cursor (a replay query paging history below
        ``first_oid`` holds its ``released_upto`` down there — its
        segments must survive). Network replay subscribers are *not*
        protected: a socket subscriber that lags below the floor
        catches up from the floor (``read_stream_range`` skips the
        discarded prefix). Returns rows dropped per stream.
        """
        if not self.durable:
            return {}
        dropped: Dict[str, int] = {}
        now = self.now()
        for name, log in self._logs.items():
            if log.retain_ms is None and log.retain_bytes is None:
                continue
            protect = log.next_offset
            basket = self.scheduler.baskets.get(name)
            if basket is not None:
                protect = min(protect, basket.first_oid)
                for sub in basket.subscriptions():
                    protect = min(protect, sub.released_upto)
            rows = log.apply_retention(now, protect)
            if rows:
                dropped[name] = rows
                self.retention_rows_dropped += rows
        return dropped

    def _recover(self) -> None:
        """Rebuild engine state from ``data_dir`` after a crash.

        Sources, in trust order: sealed log segments and the re-scanned
        (possibly torn) tail; the last checkpoint's ``state.json``
        (cursor snapshots, basket bounds, emit stamps); ``catalog`` and
        ``queries.json`` definitions. Output-stream logs are truncated
        back to the checkpoint so re-fired producer windows regenerate
        the tail instead of duplicating it.
        """
        self._recovering = True
        try:
            state: Dict[str, Any] = {}
            if os.path.exists(self._state_path()):
                with open(self._state_path()) as f:
                    state = json.load(f)
            qdefs = load_queries(self.data_dir)
            if os.path.exists(os.path.join(self._catalog_dir(),
                                           "catalog.json")):
                load_catalog(self._catalog_dir(), into=self.catalog)
            # streams whose only trace is a log dir (crash before the
            # first catalog checkpoint): definitions from manifests
            streams_dir = os.path.join(self.data_dir, "streams")
            known = {s.name for s in self.catalog.streams()}
            if os.path.isdir(streams_dir):
                for entry in sorted(os.listdir(streams_dir)):
                    mpath = os.path.join(streams_dir, entry, MANIFEST)
                    if entry in known or not os.path.exists(mpath):
                        continue
                    with open(mpath) as f:
                        manifest = json.load(f)
                    self.catalog.create_stream(
                        entry, Schema.parse(
                            [(n, t) for n, t in manifest["columns"]]))
            # restore simulated time so window schedules resume where
            # they left off
            saved_now = state.get("now")
            if saved_now is not None \
                    and isinstance(self.clock, SimulatedClock) \
                    and saved_now > self.clock.now():
                self.clock.set(int(saved_now))
            output_streams = {str(e["output_stream"]).lower()
                              for e in qdefs if e.get("output_stream")}
            bmeta_all = state.get("baskets", {})
            for stream_def in self.catalog.streams():
                name = stream_def.name
                basket = Basket(name, stream_def.schema)
                self.scheduler.add_basket(basket)
                self._receptors[name] = []
                log = self._open_log(name, stream_def.schema)
                bmeta = bmeta_all.get(name, {})
                end = log.next_offset
                if name in output_streams:
                    # regenerable: producers re-fire from their saved
                    # cursors, so anything past the checkpoint would
                    # otherwise appear twice
                    end = min(end, int(bmeta.get("next_oid", 0)))
                    log.truncate_to(end)
                # rebuild only the checkpointed retained prefix: cursors
                # restored below it (incremental floor_oid, replay
                # released_upto) read the log-resident head through the
                # paged binder instead of forcing the whole suffix back
                # into memory
                base = int(bmeta.get("first_oid", 0))
                base = max(0, min(base, end))
                cols, arrival, actual_lo = log.read_clamped(base, end)
                basket.adopt_columns(actual_lo, cols, arrival)
                basket.total_in = int(bmeta.get("total_in", end))
                if basket.total_in < end:
                    basket.total_in = end
                basket.high_water = max(
                    int(bmeta.get("high_water", 0)), len(basket))
                basket._stamps = [
                    (int(lo), int(hi), fp)
                    for lo, hi, fp in bmeta.get("stamps", [])
                    if actual_lo <= int(lo) and int(hi) <= end]
                self._attach_durable(basket, log)
            # re-register standing queries, then wind their cursors
            # back to the checkpoint
            qstates = state.get("queries", {})
            for entry in qdefs:
                query = self.register_continuous(
                    entry["sql"], name=entry["name"],
                    mode=entry.get("mode", "auto"),
                    min_batch=entry.get("min_batch", 1),
                    max_delay_ms=entry.get("max_delay_ms"),
                    cache_enabled=entry.get("cache_enabled", True),
                    output_stream=entry.get("output_stream"),
                    collect_max_batches=entry.get("collect_max_batches"))
                snap = qstates.get(query.name, {})
                if snap.get("streams"):
                    query.factory.cursor_restore(snap["streams"])
            self.recovered = True
        finally:
            self._recovering = False
        self.checkpoint()

    def _rehydrate_stream(self, stream: str, target: int,
                          allow_gap: bool = False) -> int:
        """Pull vacuumed history ``[target, first_oid)`` back from the
        stream's log into basket memory (replay support); returns the
        number of rows rehydrated.

        When the log no longer holds the full range — retention (or an
        output-stream truncation) discarded ``[target, actual_lo)`` —
        rehydrating just the surviving suffix while the caller believes
        it got everything from *target* is a silent gap. Unless
        *allow_gap* acknowledges it (``from_start`` semantics: "oldest
        available"), the gap raises :class:`~repro.errors.ReplayGap`
        carrying the floor to re-request from.
        """
        basket = self.basket(stream)
        log = self._logs.get(basket.name)
        if log is None:
            return 0
        lo = max(0, int(target))
        hi = basket.first_oid
        if hi <= lo:
            return 0
        cols, arrival, actual_lo = log.read_clamped(lo, hi)
        if actual_lo > lo and not allow_gap:
            raise ReplayGap(
                f"stream {stream!r}: log no longer holds "
                f"[{lo},{actual_lo}) — {actual_lo - lo} row(s) below "
                f"the retention floor; re-request from {actual_lo}",
                stream=basket.name, requested=lo, floor=actual_lo)
        if not len(arrival):
            return 0
        return basket.rehydrate(actual_lo, cols, arrival)

    def read_stream_range(self, stream: str, lo: int, hi: int
                          ) -> List[Tuple[int, int, Relation]]:
        """Materialize stream tuples ``[lo, hi)`` as ``(lo, hi,
        relation)`` parts, splicing durable log history (below the
        basket's retained prefix) with live basket memory — the replay
        read path behind ``SUBSCRIBE ... FROM``. Bounds clamp to what
        exists; a concurrent vacuum moving the prefix mid-read falls
        back to the log for the vacated range. History below the
        retention floor is *skipped*, not fatal: the first returned
        part then starts above the requested ``lo`` — a subscriber
        asking ``from=0`` after retention kicked in lags to the floor
        instead of erroring out."""
        basket = self.basket(stream)
        log = self._logs.get(basket.name)
        parts: List[Tuple[int, int, Relation]] = []
        cursor = max(0, int(lo))
        hi = min(int(hi), basket.next_oid)
        while cursor < hi:
            first = basket.first_oid
            if cursor < first:
                if log is None:
                    cursor = first  # history gone, not logged: skip
                    continue
                cols, arrival, actual_lo = log.read_clamped(
                    cursor, min(hi, first))
                n = len(arrival)
                if n == 0:
                    cursor = first  # below what the log retains
                    continue
                if actual_lo > cursor:
                    cursor = actual_lo  # [cursor, actual_lo) retained
                    #   by nobody: lag to the retention floor
                rel = Relation([
                    (c.name, BAT.adopt_array(c.dtype, cols[c.name],
                                             hseqbase=cursor))
                    for c in basket.schema.columns])
                parts.append((cursor, cursor + n, rel))
                cursor += n
                continue
            rel, (clo, chi) = basket.snapshot_range(cursor, hi)
            if clo > cursor:
                continue  # vacuum raced us; redo via the log branch
            if chi <= cursor:
                break
            parts.append((cursor, chi, rel))
            cursor = chi
        return parts

    def log_stats(self) -> Dict[str, Any]:
        """Durability counters: per-stream log stats plus checkpoint
        and recovery bookkeeping (the ``.log`` monitor pane)."""
        streams: Dict[str, Any] = {}
        for name, log in sorted(self._logs.items()):
            entry = log.stats()
            basket = self.scheduler.baskets.get(name)
            if basket is not None and basket.pager is not None:
                entry["pager"] = basket.pager.stats()
            streams[name] = entry
        out: Dict[str, Any] = {
            "data_dir": self.data_dir,
            "durability": self.durability,
            "recovered": int(self.recovered),
            "checkpoints": self.checkpoints,
            "last_checkpoint_ms": round(self.last_checkpoint_ms, 3),
            "retain_ms": self.retain_ms,
            "retain_bytes": self.retain_bytes,
            "retention_rows_dropped": self.retention_rows_dropped,
            "streams": streams}
        if self.last_checkpoint_error is not None:
            out["checkpoint_error"] = repr(self.last_checkpoint_error)
        return out

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------

    def save(self, directory: str) -> None:
        """Persist the whole engine state to *directory*: tables,
        stream schemas and basket contents, and every standing query's
        definition.

        Restore semantics (see :meth:`restore`): standing queries are
        re-registered and resume with the data arriving after the
        restore point; tuples retained in baskets stay available to
        one-time queries and to the archive path.
        """
        import json
        import os

        import numpy as np

        from repro.storage.persistence import save_catalog

        save_catalog(self.catalog, directory)
        baskets_dir = os.path.join(directory, "baskets")
        os.makedirs(baskets_dir, exist_ok=True)
        basket_meta = {}
        for name, basket in self.scheduler.baskets.items():
            bdir = os.path.join(baskets_dir, name)
            os.makedirs(bdir, exist_ok=True)
            for coldef in basket.schema.columns:
                np.save(os.path.join(bdir, coldef.name + ".npy"),
                        basket.column(coldef.name).values,
                        allow_pickle=coldef.dtype.is_string)
            np.save(os.path.join(bdir, "__arrival.npy"),
                    basket._arrival.values)
            basket_meta[name] = {"first_oid": basket.first_oid,
                                 "total_in": basket.total_in,
                                 "total_dropped": basket.total_dropped}
        queries = []
        for query in self._queries.values():
            entry = dict(query.knobs)
            entry.update({"name": query.name, "sql": query.sql_text,
                          "output_stream": query.output_stream})
            queries.append(entry)
        with open(os.path.join(directory, "engine.json"), "w") as f:
            json.dump({"now": self.now(), "baskets": basket_meta,
                       "queries": queries}, f, indent=2)

    @classmethod
    def restore(cls, directory: str,
                clock: Optional[Clock] = None) -> "DataCellEngine":
        """Rebuild an engine saved with :meth:`save`."""
        import json
        import os

        import numpy as np

        from repro.storage.persistence import load_catalog

        with open(os.path.join(directory, "engine.json")) as f:
            manifest = json.load(f)
        engine = cls(clock=clock if clock is not None
                     else SimulatedClock(manifest["now"]))
        load_catalog(directory, into=engine.catalog)
        # materialize baskets for every stream definition
        for stream_def in engine.catalog.streams():
            basket = Basket(stream_def.name, stream_def.schema)
            engine.scheduler.add_basket(basket)
            engine._receptors[basket.name] = []
        for name, meta in manifest["baskets"].items():
            basket = engine.basket(name)
            bdir = os.path.join(directory, "baskets", name)
            for coldef in basket.schema.columns:
                values = np.load(
                    os.path.join(bdir, coldef.name + ".npy"),
                    allow_pickle=coldef.dtype.is_string)
                basket.column(coldef.name).extend(values)
            arrival = np.load(os.path.join(bdir, "__arrival.npy"))
            basket._arrival.extend(arrival)
            shift = meta["first_oid"]
            for coldef in basket.schema.columns:
                basket.column(coldef.name).hseqbase = shift
            basket._arrival.hseqbase = shift
            basket.total_in = meta["total_in"]
            basket.total_dropped = meta["total_dropped"]
        for entry in manifest["queries"]:
            engine.register_continuous(
                entry["sql"], name=entry["name"], mode=entry["mode"],
                min_batch=entry["min_batch"],
                max_delay_ms=entry["max_delay_ms"],
                cache_enabled=entry["cache_enabled"],
                output_stream=entry["output_stream"],
                collect_max_batches=entry.get("collect_max_batches"))
        return engine

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def explain(self, sql_or_name: str) -> str:
        """Plan view: for a registered query name, logical plan + MAL
        before/after the continuous rewrite; for SQL text, the plan it
        would get."""
        if sql_or_name.lower() in self._queries:
            return self.monitor.plans(sql_or_name.lower())
        stmt = parse(sql_or_name)
        if not isinstance(stmt, (ast.SelectStmt, ast.UnionStmt)):
            raise BindError("can only explain SELECT statements")
        plan = Optimizer().optimize(Planner(self.catalog).plan(stmt))
        program = compile_plan(plan, "user.explain")
        return plan.pretty() + "\n\n" + program.pretty()
