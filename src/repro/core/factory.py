"""Factories: resident continuous-query co-routines.

*"Continuous query plans are represented by factories [...] Each factory
encloses a (partial) query plan and produces a partial result at each
call. For this, a factory continuously reads data from the input baskets,
evaluates its query plan and creates a result set, which it then places
in its output baskets."*

Two concrete factories implement the demo's two execution modes:

* :class:`ReevalFactory` — re-runs the full (rewritten) MAL program over
  the complete current window every firing;
* :class:`IncrementalFactory` — processes each basic window once through
  the per-slice pipeline, caches intermediates, and merges at firing
  time (see :mod:`repro.core.incremental`).

Every mode reads its windows through the basket (``basket.relation`` /
``recycler.window_slice`` / ``DeltaFactory._read``), so a window whose
lo bound dips below the basket's vacuum floor is transparently served
from log-resident history when the basket carries a paged binder
(:class:`~repro.store.paging.PagedWindowBinder`) — replay and recovered
cursors fire over multi-day logs without the factory materializing or
even knowing about the historic prefix.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.basket import Basket
from repro.core.emitter import Emitter
from repro.core.incremental import IncrementalAnalysis, IncrementalExecutor
from repro.core.windows import BasicWindowTracker, WindowState
from repro.errors import FactoryError, MALError
from repro.mal.compiler import compile_program, record_compile_fallback
from repro.mal.fingerprint import (EmitStamper, cached_fingerprints,
                                   cached_program_fingerprint)
from repro.mal.interpreter import MALContext, MALInterpreter
from repro.mal.program import MALProgram
from repro.mal.relation import Relation
from repro.sql.executor import ExecutionContext
from repro.sql.plan import PlanNode
from repro.storage.catalog import Catalog

RUNNING = "running"
PAUSED = "paused"
FAILED = "failed"


class _BasketHooks:
    """Adapter so rewritten MAL programs can lock/drain real baskets."""

    def __init__(self, owner: str, baskets: Dict[str, Basket]):
        self.owner = owner
        self.baskets = baskets
        self.drains = 0

    def lock(self, stream: str) -> None:
        self.baskets[stream].lock(self.owner)

    def unlock(self, stream: str) -> None:
        self.baskets[stream].unlock(self.owner)

    def drain(self, stream: str) -> None:
        self.drains += 1  # the window cursor decides what is released


class Factory:
    """Base class: state machine + statistics shared by both modes."""

    def __init__(self, name: str, baskets: Dict[str, Basket],
                 emitter: Emitter):
        self.name = name
        self.baskets = baskets
        self.emitter = emitter
        self.state = RUNNING
        self.fires = 0
        self.tuples_in = 0
        self.rows_out = 0
        self.busy_seconds = 0.0
        self.last_error: Optional[Exception] = None
        self.last_result: Optional[Relation] = None
        # recyclable instruction fingerprints (reeval factories fill
        # this in; the engine feeds it to the recycler's census)
        self.recycle_fps: List[str] = []
        # wall time of the last successful _evaluate, in ms — the
        # recompute cost a chained output basket charges its adopted
        # emit payloads with
        self.last_eval_ms = 0.0
        # one firing at a time per factory: the parallel scheduler only
        # ever schedules a factory into one wave slot, but engine-level
        # callers (live mode, shell) may also fire concurrently
        self._fire_lock = threading.Lock()

    # scheduler protocol ------------------------------------------------

    def poll(self, now: int) -> None:
        """Absorb newly arrived data (incremental mode works here)."""
        return None

    def enabled(self, now: int) -> bool:
        raise NotImplementedError

    def fire(self, now: int) -> Optional[Relation]:
        """One firing; delivers to the emitter and returns the result.

        Evaluation is split in two: :meth:`_evaluate` computes the
        result and *returns* its consumption bound, then
        :meth:`_commit` advances the window cursors. Keeping the
        shared-state mutation out of the evaluation body means a
        concurrent observer (vacuum, monitor) never sees a half-fired
        cursor, and a failed evaluation leaves the cursors untouched.
        """
        if self.state != RUNNING:
            return None
        with self._fire_lock:
            started = time.perf_counter()
            try:
                result, consumed = self._evaluate(now)
                self.last_eval_ms = \
                    (time.perf_counter() - started) * 1000.0
                self._commit(now, consumed)
            except Exception as exc:  # quarantine factory, keep the net
                self.state = FAILED
                self.last_error = exc
                raise FactoryError(
                    f"factory {self.name!r} failed: {exc}", self.name,
                    cause=exc) from exc
            finally:
                self.busy_seconds += time.perf_counter() - started
            self.fires += 1
            self.last_result = result
            if result is not None:
                self.rows_out += result.row_count
                self.emitter.deliver(result, now)
            return result

    def _evaluate(self, now: int
                  ) -> Tuple[Optional[Relation], Optional[Any]]:
        """Compute one firing's result; returns ``(result, consumed)``
        where *consumed* is the consumption bound handed to
        :meth:`_commit` (shape is subclass-private)."""
        raise NotImplementedError

    def _commit(self, now: int, consumed: Optional[Any]) -> None:
        """Advance window cursors/subscriptions after a successful
        evaluation."""
        return None

    def emit_stamp(self) -> Optional[str]:
        """Emit fingerprint for the firing currently being delivered,
        or None when this factory does not stamp its output (no
        fingerprints, or an execution mode without them). A chained
        :class:`~repro.core.emitter.BasketSink` consults this while
        :meth:`fire` holds the firing lock."""
        return None

    def input_streams(self) -> List[str]:
        return sorted(self.baskets)

    def write_streams(self) -> List[str]:
        """Baskets this factory appends results to (its output
        baskets); the parallel scheduler's conflict analysis keys on
        these."""
        from repro.core.emitter import BasketSink

        return sorted({sink.basket.name for sink in self.emitter.sinks
                       if isinstance(sink, BasketSink)})

    def cursor_snapshot(self) -> Dict[str, dict]:
        """Per-stream window-cursor snapshots for the engine's durable
        checkpoint (see :mod:`repro.store`); restored after a crash
        with :meth:`cursor_restore`."""
        return {}

    def cursor_restore(self, states: Dict[str, dict]) -> None:
        """Reposition window cursors from a checkpoint snapshot."""
        return None

    def pause(self) -> None:
        if self.state == RUNNING:
            self.state = PAUSED

    def resume(self) -> None:
        if self.state == PAUSED:
            self.state = RUNNING

    def stats(self) -> Dict[str, float]:
        return {"fires": self.fires, "tuples_in": self.tuples_in,
                "rows_out": self.rows_out,
                "busy_seconds": round(self.busy_seconds, 6),
                "state": self.state}

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name}, fires={self.fires}, "
                f"state={self.state})")


class ReevalFactory(Factory):
    """Mode 1: full re-evaluation of the continuous MAL program.

    Optional scheduler *time constraints* apply to unwindowed inputs:
    hold the firing until ``min_batch`` tuples are pending or the oldest
    pending tuple is ``max_delay_ms`` old — the paper's "possibly
    delaying events in their baskets for some time".
    """

    def __init__(self, name: str, program: MALProgram, plan: PlanNode,
                 window_states: Dict[str, WindowState],
                 baskets: Dict[str, Basket], catalog: Catalog,
                 emitter: Emitter, min_batch: int = 1,
                 max_delay_ms: Optional[int] = None, recycler=None,
                 compiled: bool = True, profile: bool = False):
        super().__init__(name, baskets, emitter)
        self.program = program
        self.plan = plan
        self.window_states = window_states
        self.catalog = catalog
        self.min_batch = max(int(min_batch), 1)
        self.max_delay_ms = max_delay_ms
        self.recycler = recycler
        # structural fingerprints are a property of the (static)
        # program: memoized per plan, consulted every firing
        self._fingerprints = cached_fingerprints(program) \
            if recycler is not None else None
        # whole-plan identity for stamping chained emits; the
        # per-firing emit fingerprint combines it with the input
        # window ranges the firing evaluated. The stamper pre-hashes
        # the plan prefix so each firing digests only the range text
        self._plan_fp = cached_program_fingerprint(program) \
            if recycler is not None else None
        self._stamper = EmitStamper(self._plan_fp) \
            if self._plan_fp is not None else None
        # recyclable fingerprints for the recycler's sharing census,
        # plus the cached whole-plan admission decision
        self.recycle_fps = [info.fp for info in (self._fingerprints or [])
                            if info is not None and info.recyclable]
        self._gate_version = -1
        self._gate_recycle = True
        self._gate_modes: Optional[tuple] = None
        self._emit_fp: Optional[str] = None
        # slot-compile once at registration; a compile failure (open
        # opcode table, externally injected bindings) falls back to
        # the interpreter rather than rejecting the query
        self.compiled = None
        if compiled:
            try:
                self.compiled = compile_program(program)
            except MALError:
                record_compile_fallback()
        # per-opcode [calls, cumulative_ms], populated when profiling
        # is on (the firing lock serializes updates)
        self.profile_enabled = bool(profile)
        self.opcode_profile: Dict[str, List[float]] = {}

    def enabled(self, now: int) -> bool:
        if self.state != RUNNING:
            return False
        states = list(self.window_states.values())
        windowed = [w for w in states if w.spec.kind != "none"]
        plain = [w for w in states if w.spec.kind == "none"]
        if windowed:
            if not all(w.ready(now) for w in windowed):
                return False
            return True
        if not any(w.ready(now) for w in plain):
            return False
        return self._batch_ok(plain, now)

    def _batch_ok(self, states: List[WindowState], now: int) -> bool:
        if self.min_batch <= 1 and self.max_delay_ms is None:
            return True
        pending = sum(w.pending_tuples() for w in states)
        if pending >= self.min_batch:
            return True
        if self.max_delay_ms is None:
            return False
        oldest = None
        for w in states:
            if w.pending_tuples() <= 0:
                continue
            arr, (lo, _hi) = w.basket.arrival_slice(
                w.sub.read_upto, w.sub.read_upto + 1)
            if len(arr) and lo == w.sub.read_upto:
                t = int(arr[0])
                oldest = t if oldest is None else min(oldest, t)
        return oldest is not None and now - oldest >= self.max_delay_ms

    def _evaluate(self, now: int
                  ) -> Tuple[Optional[Relation], Dict[str, int]]:
        slices: Dict[str, Relation] = {}
        ranges: Dict[str, tuple] = {}
        for stream, ws in self.window_states.items():
            lo, hi = ws.slice_bounds(now)
            basket = self.baskets[stream]
            if self.recycler is not None:
                # one materialization per (basket, window) per net —
                # every factory reading this window shares the object
                rel, clamped = self.recycler.window_slice(basket, lo, hi)
            else:
                rel = basket.relation(lo, hi)
                clamped = basket.clamp_range(lo, hi)
            slices[stream] = rel
            ranges[stream] = clamped
            self.tuples_in += rel.row_count
        hooks = _BasketHooks(self.name, self.baskets)
        ctx = MALContext(self.catalog,
                         stream_reader=lambda name: slices[name],
                         basket_hooks=hooks)
        result = self._run_plan(ctx, ranges)
        if self._stamper is not None:
            self._emit_fp = self._stamper.stamp(
                [(s, lo, hi) for s, (lo, hi) in ranges.items()])
        return result, {stream: hi for stream, (_lo, hi)
                        in ranges.items()}

    def _run_plan(self, ctx: MALContext,
                  ranges: Dict[str, tuple]) -> Optional[Relation]:
        """Dispatch one firing to the specialized executor.

        Compiled plans take the slot loop (recycled or bare); plans
        that failed to compile keep the interpreter, bit-for-bit
        equivalent by construction."""
        recycling = (self.recycler is not None
                     and self.recycler.enabled)
        if recycling and self.recycle_fps:
            # whole-plan admission: when the sharing census proves no
            # instruction of this plan can produce a cache hit, run
            # the bare loop. Cached until the census changes, so the
            # steady-state cost is one integer compare per firing.
            version = self.recycler.census_version
            if version != self._gate_version:
                self._gate_version = version
                self._gate_recycle = self.recycler.plan_should_recycle(
                    self.recycle_fps)
                # per-step admission snapshot for the compiled loop:
                # steps the ledger retired run the bare thunk with no
                # per-fire recycler call at all
                if self._gate_recycle and self.compiled is not None:
                    self._gate_modes = self.compiled.attempt_modes(
                        self.recycler)
            recycling = self._gate_recycle
        if self.compiled is not None:
            if self.profile_enabled:
                return self.compiled.run_profiled(
                    ctx, self.opcode_profile,
                    self.recycler if recycling else None, ranges,
                    modes=self._gate_modes if recycling else None)
            if recycling:
                return self.compiled.run_recycled(
                    ctx, self.recycler, ranges, self._gate_modes)
            return self.compiled.run(ctx)
        interp = MALInterpreter(ctx, recycler=self.recycler,
                                fingerprints=self._fingerprints,
                                window_ranges=ranges)
        return interp.run(self.program)

    def emit_stamp(self) -> Optional[str]:
        return self._emit_fp

    def _commit(self, now: int,
                consumed: Optional[Dict[str, int]]) -> None:
        for stream, ws in self.window_states.items():
            ws.advance(now, consumed_upto=consumed[stream])

    def cursor_snapshot(self) -> Dict[str, dict]:
        return {s: ws.snapshot()
                for s, ws in self.window_states.items()}

    def cursor_restore(self, states: Dict[str, dict]) -> None:
        for stream, ws in self.window_states.items():
            if stream in states:
                ws.restore(states[stream])


class IncrementalFactory(Factory):
    """Mode 2: per-basic-window processing with cached intermediates."""

    def __init__(self, name: str, analysis: IncrementalAnalysis,
                 trackers: Dict[str, BasicWindowTracker],
                 baskets: Dict[str, Basket], catalog: Catalog,
                 emitter: Emitter, cache_enabled: bool = True,
                 plan_fp: Optional[str] = None):
        super().__init__(name, baskets, emitter)
        self.analysis = analysis
        self.trackers = trackers
        self.catalog = catalog
        self.executor = IncrementalExecutor(
            analysis, ExecutionContext(catalog), cache_enabled)
        # whole-plan identity for stamping chained emits; per firing it
        # is combined with the full-window oid ranges so the stamp
        # matches what a reeval factory over the same windows would emit
        self._plan_fp = plan_fp
        self._stamper = EmitStamper(plan_fp) \
            if plan_fp is not None else None
        self._emit_fp: Optional[str] = None

    def poll(self, now: int) -> None:
        """Process every newly completed basic window exactly once."""
        if self.state != RUNNING:
            return
        for stream, tracker in self.trackers.items():
            for j, lo, hi in tracker.new_basic_windows(now):
                slice_rel = self.baskets[stream].relation(lo, hi)
                self.tuples_in += slice_rel.row_count
                started = time.perf_counter()
                try:
                    self.executor.process_basic_window(stream, j,
                                                       slice_rel)
                except Exception as exc:
                    self.state = FAILED
                    self.last_error = exc
                    raise FactoryError(
                        f"factory {self.name!r} failed on basic window "
                        f"{j} of {stream!r}: {exc}", self.name,
                        cause=exc) from exc
                finally:
                    self.busy_seconds += time.perf_counter() - started

    def enabled(self, now: int) -> bool:
        if self.state != RUNNING:
            return False
        return all(t.ready(now) for t in self.trackers.values())

    def _evaluate(self, now: int
                  ) -> Tuple[Optional[Relation], None]:
        compositions = {}
        for stream, tracker in self.trackers.items():
            _k, bws = tracker.window_composition()
            compositions[stream] = bws
        if self._stamper is not None:
            self._emit_fp = self._stamper.stamp(
                [(stream, *tracker.window_bounds())
                 for stream, tracker in self.trackers.items()])
        return self.executor.fire(compositions), None

    def emit_stamp(self) -> Optional[str]:
        return self._emit_fp

    def _commit(self, now: int, consumed: None) -> None:
        floors: Dict[str, int] = {}
        for stream, tracker in self.trackers.items():
            tracker.advance()
            floors[stream] = tracker.live_floor()
        self.executor.evict(floors)

    def cursor_snapshot(self) -> Dict[str, dict]:
        return {s: t.snapshot() for s, t in self.trackers.items()}

    def cursor_restore(self, states: Dict[str, dict]) -> None:
        for stream, tracker in self.trackers.items():
            if stream in states:
                tracker.restore(states[stream])
        # cached basic-window intermediates died with the process; the
        # rewound trackers re-feed every still-needed basic window into
        # a fresh executor
        self.executor = IncrementalExecutor(
            self.analysis, ExecutionContext(self.catalog),
            self.executor.cache_enabled)

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out.update(self.executor.cache_stats())
        return out


class DeltaFactory(Factory):
    """Mode 3: Z-set delta execution (see :mod:`repro.core.delta`).

    Re-uses the reeval window cursors (:class:`WindowState`) but feeds
    the executor only the arrival/expiry *difference* between
    consecutive windows; operator state carries the rest across
    firings. Work per firing is O(Δ) instead of O(window).
    """

    def __init__(self, name: str, analysis: IncrementalAnalysis,
                 window_states: Dict[str, WindowState],
                 baskets: Dict[str, Basket], catalog: Catalog,
                 emitter: Emitter, plan_fp: Optional[str] = None):
        from repro.core.delta import DeltaExecutor

        super().__init__(name, baskets, emitter)
        self.analysis = analysis
        self.window_states = window_states
        self.catalog = catalog
        self.executor = DeltaExecutor(analysis, catalog)
        self._plan_fp = plan_fp
        self._stamper = EmitStamper(plan_fp) \
            if plan_fp is not None else None
        self._emit_fp: Optional[str] = None

    def enabled(self, now: int) -> bool:
        if self.state != RUNNING:
            return False
        return all(ws.ready(now) for ws in self.window_states.values())

    def _split_hints(self, ws: WindowState,
                     arrive: Tuple[int, int]) -> List[int]:
        """Oids inside the arrival range where future window los land.

        Only tuple windows are predictable (slide-sized steps from the
        current window start); time-window chunk boundaries depend on
        arrival timestamps that may not exist yet, so those fall back
        to straddle recomputes in the chunk stores.
        """
        spec = ws.spec
        alo, ahi = arrive
        if spec.kind != "tuple" or ahi - alo <= spec.slide:
            return []
        anchor, _ = ws.slice_bounds(0)
        first = anchor + ((alo - anchor) // spec.slide + 1) * spec.slide
        return list(range(first, ahi, spec.slide))

    def _evaluate(self, now: int
                  ) -> Tuple[Optional[Relation], Dict[str, int]]:
        from repro.core.delta import StreamDelta

        deltas: Dict[str, StreamDelta] = {}
        ranges: Dict[str, tuple] = {}
        for stream, ws in self.window_states.items():
            window, arrive, expire = ws.delta_bounds(now)
            deltas[stream] = StreamDelta(
                window, arrive, expire, self._split_hints(ws, arrive))
            ranges[stream] = self.baskets[stream].clamp_range(*window)
            self.tuples_in += max(arrive[1] - arrive[0], 0)
        result = self.executor.fire(deltas, self._read)
        if self._stamper is not None:
            self._emit_fp = self._stamper.stamp(
                [(s, lo, hi) for s, (lo, hi) in ranges.items()])
        return result, {stream: hi for stream, (_lo, hi)
                        in ranges.items()}

    def _read(self, stream: str, lo: int, hi: int) -> Relation:
        return self.baskets[stream].relation(lo, hi)

    def emit_stamp(self) -> Optional[str]:
        return self._emit_fp

    def _commit(self, now: int,
                consumed: Optional[Dict[str, int]]) -> None:
        for stream, ws in self.window_states.items():
            ws.advance(now, consumed_upto=consumed[stream],
                       retain_expired=True)

    def cursor_snapshot(self) -> Dict[str, dict]:
        return {s: ws.snapshot()
                for s, ws in self.window_states.items()}

    def cursor_restore(self, states: Dict[str, dict]) -> None:
        from repro.core.delta import DeltaExecutor

        for stream, ws in self.window_states.items():
            if stream in states:
                ws.restore(states[stream])
        # Z-set operator state died with the process; restore() nulled
        # last_bounds, so the first recovered firing feeds the whole
        # window as arrivals into a fresh executor — same emissions,
        # rebuilt state
        self.executor = DeltaExecutor(self.analysis, self.catalog)

    def stats(self) -> Dict[str, float]:
        out = super().stats()
        out.update(self.executor.delta_stats())
        return out
