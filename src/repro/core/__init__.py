"""DataCell core: baskets, factories, scheduler, windows, engine."""

from repro.core.basket import Basket, Subscription
from repro.core.clock import Clock, SimulatedClock, WallClock
from repro.core.emitter import (CallbackSink, CollectingSink, Emitter,
                                NullSink, Sink)
from repro.core.engine import ContinuousQuery, DataCellEngine
from repro.core.factory import Factory, IncrementalFactory, ReevalFactory
from repro.core.incremental import (IncrementalAnalysis,
                                    UnsupportedIncremental,
                                    analyze_incremental)
from repro.core.live import LiveRunner
from repro.core.monitor import Monitor
from repro.core.receptor import Receptor, ThreadedReceptor
from repro.core.rewriter import plan_diff, rewrite_to_continuous
from repro.core.scheduler import PetriNetScheduler
from repro.core.windows import BasicWindowTracker, WindowSpec, WindowState

__all__ = [
    "Basket", "Subscription", "Clock", "SimulatedClock", "WallClock",
    "CallbackSink", "CollectingSink", "Emitter", "NullSink", "Sink",
    "ContinuousQuery", "DataCellEngine", "Factory", "IncrementalFactory",
    "ReevalFactory", "IncrementalAnalysis", "UnsupportedIncremental",
    "analyze_incremental", "Monitor", "Receptor", "ThreadedReceptor",
    "plan_diff", "rewrite_to_continuous", "PetriNetScheduler",
    "BasicWindowTracker", "WindowSpec", "WindowState", "LiveRunner",
]
