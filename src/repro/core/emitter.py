"""Emitters: the delivery edge — one per standing-query client.

A factory firing appends its (partial) result to the query's output
side; the emitter drains that to a sink. Sinks collect, call back, or
write out — the simulation-friendly stand-ins for the demo's network
clients.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.mal.relation import Relation


class Sink:
    """Receives one result relation per factory firing."""

    def deliver(self, result: Relation, now: int) -> None:
        raise NotImplementedError


class CollectingSink(Sink):
    """Keeps every delivered batch; handy in tests and benchmarks."""

    def __init__(self):
        self.batches: List[Tuple[int, Relation]] = []

    def deliver(self, result: Relation, now: int) -> None:
        self.batches.append((now, result))

    def rows(self) -> List[tuple]:
        out: List[tuple] = []
        for _now, rel in self.batches:
            out.extend(rel.to_rows())
        return out

    def latest(self) -> Optional[Relation]:
        return self.batches[-1][1] if self.batches else None

    def clear(self) -> None:
        self.batches = []

    def __len__(self) -> int:
        return len(self.batches)


class CallbackSink(Sink):
    """Invokes ``fn(result, now)`` per delivery."""

    def __init__(self, fn: Callable[[Relation, int], Any]):
        self.fn = fn

    def deliver(self, result: Relation, now: int) -> None:
        self.fn(result, now)


class NullSink(Sink):
    """Discards results (pure-throughput benchmarks)."""

    def deliver(self, result: Relation, now: int) -> None:
        return None


class BasketSink(Sink):
    """Appends results to a stream basket — the paper's *output
    baskets*: a factory "creates a result set, which it then places in
    its output baskets", where further standing queries (or emitters)
    pick it up. This is what makes multi-stage query networks
    (Figure 3) composable."""

    def __init__(self, basket):
        self.basket = basket

    def deliver(self, result: Relation, now: int) -> None:
        self.basket.append_relation(result, now)


class Emitter:
    """Fans one query's result batches out to its sinks."""

    def __init__(self, name: str):
        self.name = name
        self.sinks: List[Sink] = []
        self.total_batches = 0
        self.total_rows = 0
        self.last_delivery_time: Optional[int] = None

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    def deliver(self, result: Relation, now: int) -> None:
        self.total_batches += 1
        self.total_rows += result.row_count
        self.last_delivery_time = now
        for sink in self.sinks:
            sink.deliver(result, now)

    def __repr__(self) -> str:
        return (f"Emitter({self.name}, batches={self.total_batches}, "
                f"rows={self.total_rows})")
