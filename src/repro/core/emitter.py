"""Emitters: the delivery edge — one per standing-query client.

A factory firing appends its (partial) result to the query's output
side; the emitter drains that to a sink. Sinks collect, call back, or
write out — the simulation-friendly stand-ins for the demo's network
clients — while :class:`QueueSink` is the real network variant: a
bounded per-client delivery queue drained by a writer thread, with
slow-consumer eviction instead of unbounded growth.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, List, Optional, Tuple

from repro.mal.relation import Relation


class Sink:
    """Receives one result relation per factory firing."""

    def deliver(self, result: Relation, now: int) -> None:
        raise NotImplementedError


class CollectingSink(Sink):
    """Keeps delivered batches; handy in tests and benchmarks.

    ``max_batches`` bounds the retained ring: once full, the oldest
    batch is dropped per delivery (``dropped_batches`` counts them), so
    long-lived live/server deployments can keep a standing query's
    default sink without growing it forever. ``None`` (the default)
    retains everything.
    """

    def __init__(self, max_batches: Optional[int] = None):
        self.batches: List[Tuple[int, Relation]] = []
        self.dropped_batches = 0
        self._max_batches: Optional[int] = None
        self.set_max_batches(max_batches)

    @property
    def max_batches(self) -> Optional[int]:
        return self._max_batches

    def set_max_batches(self, max_batches: Optional[int]) -> None:
        """(Re)bound the ring; trims the oldest batches immediately."""
        if max_batches is not None and max_batches < 1:
            raise ValueError("max_batches must be >= 1 (or None)")
        self._max_batches = max_batches
        self._trim()

    def _trim(self) -> None:
        if self._max_batches is None:
            return
        excess = len(self.batches) - self._max_batches
        if excess > 0:
            del self.batches[:excess]
            self.dropped_batches += excess

    def deliver(self, result: Relation, now: int) -> None:
        self.batches.append((now, result))
        self._trim()

    def rows(self) -> List[tuple]:
        out: List[tuple] = []
        for _now, rel in self.batches:
            out.extend(rel.to_rows())
        return out

    def latest(self) -> Optional[Relation]:
        return self.batches[-1][1] if self.batches else None

    def clear(self) -> None:
        self.batches = []

    def __len__(self) -> int:
        return len(self.batches)


class CallbackSink(Sink):
    """Invokes ``fn(result, now)`` per delivery."""

    def __init__(self, fn: Callable[[Relation, int], Any]):
        self.fn = fn

    def deliver(self, result: Relation, now: int) -> None:
        self.fn(result, now)


class NullSink(Sink):
    """Discards results (pure-throughput benchmarks)."""

    def deliver(self, result: Relation, now: int) -> None:
        return None


class BasketSink(Sink):
    """Appends results to a stream basket — the paper's *output
    baskets*: a factory "creates a result set, which it then places in
    its output baskets", where further standing queries (or emitters)
    pick it up. This is what makes multi-stage query networks
    (Figure 3) composable.

    With a producer bound (:meth:`bind_producer`), each appended oid
    range is stamped with the producing plan's emit fingerprint and —
    when a recycler is attached — the payload is adopted as the shared
    window slice for exactly that range, so a downstream stage's scan
    of the output basket is a cache hit instead of a
    re-materialization (fingerprint flow across the stage boundary).
    """

    def __init__(self, basket, recycler=None):
        self.basket = basket
        self.recycler = recycler
        self._producer = None
        self.stamped_ranges = 0

    def bind_producer(self, factory) -> None:
        """Attach the factory whose firings feed this sink; its
        :meth:`~repro.core.factory.Factory.emit_stamp` provides the
        per-firing fingerprint (None disables stamping)."""
        self._producer = factory

    def deliver(self, result: Relation, now: int) -> None:
        fp = self._producer.emit_stamp() \
            if self._producer is not None else None
        if fp is None:
            self.basket.append_relation(result, now)
            return
        schema = self.basket.schema
        if result.names != schema.names:
            result = result.renamed(schema.names)
        lo, hi = self.basket.append_stamped(result, now, fp)
        if self.recycler is None or hi <= lo:
            return
        # only adopt when the payload is exactly what relation(lo, hi)
        # would materialize — a dtype mismatch means the basket
        # coerced on append and the payload no longer matches
        if all(result.column(c.name).dtype == c.dtype
               for c in schema.columns):
            self.stamped_ranges += 1
            self.recycler.adopt_slice(
                self.basket.name, lo, hi, result, fp,
                cost_ms=self._producer.last_eval_ms)


class QueueSink(Sink):
    """A bounded hand-off queue between the scheduler and one client.

    The network edge attaches one per subscribed client: ``deliver``
    (scheduler thread) enqueues ``(seq, now, relation)`` without ever
    blocking, a writer thread drains with :meth:`get` and ships RESULT
    frames. Batches stay in delivery order (FIFO queue, single writer).

    When the client cannot keep up and the queue fills, the sink flips
    to *evicted*: further deliveries are dropped and counted, and the
    server tears the subscription down — a slow consumer must never
    stall the engine or buffer unboundedly.
    """

    def __init__(self, name: str, max_batches: int = 256):
        if max_batches < 1:
            raise ValueError("max_batches must be >= 1")
        self.name = name
        self._queue: "queue.Queue[Tuple[int, int, Relation]]" = \
            queue.Queue(maxsize=max_batches)
        self._seq = 0
        self._lock = threading.Lock()
        self._waker: Optional[Callable[[], Any]] = None
        self.evicted = False
        self.delivered_batches = 0
        self.delivered_rows = 0
        self.dropped_batches = 0

    def set_waker(self, fn: Optional[Callable[[], Any]]) -> None:
        """Attach a callback invoked after every :meth:`deliver` —
        including eviction flips — so an event-loop consumer can sleep
        on an event instead of polling the queue. Called from the
        delivering (scheduler) thread; keep it tiny and non-blocking
        (the asyncio edge passes a ``call_soon_threadsafe`` trampoline).
        """
        self._waker = fn

    def deliver(self, result: Relation, now: int) -> None:
        with self._lock:
            if self.evicted:
                self.dropped_batches += 1
                self._wake()
                return
            seq = self._seq
            try:
                self._queue.put_nowait((seq, now, result))
            except queue.Full:
                self.evicted = True
                self.dropped_batches += 1
                self._wake()
                return
            self._seq += 1
            self.delivered_batches += 1
            self.delivered_rows += result.row_count
        self._wake()

    def _wake(self) -> None:
        if self._waker is not None:
            self._waker()

    def get(self, timeout: Optional[float] = None
            ) -> Optional[Tuple[int, int, Relation]]:
        """Next ``(seq, now, relation)`` or ``None`` on timeout."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def get_nowait(self) -> Optional[Tuple[int, int, Relation]]:
        """Next ``(seq, now, relation)`` or ``None`` when empty."""
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    def depth(self) -> int:
        return self._queue.qsize()

    def drained(self) -> bool:
        return self._queue.empty()

    def stats(self) -> dict:
        return {"queue_depth": self.depth(),
                "delivered_batches": self.delivered_batches,
                "delivered_rows": self.delivered_rows,
                "dropped_batches": self.dropped_batches,
                "evicted": self.evicted}


class SubscriberCursor:
    """Offset bookkeeping for one replay-capable stream subscriber.

    Unlike :class:`QueueSink` subscribers — which buffer a bounded
    queue and get evicted when it overflows — a cursor subscriber owns
    a position in the stream's oid/offset space and simply *lags* when
    slow: the server's pump thread re-reads ``[cursor, next_oid)`` from
    basket memory or the durable log, so nothing needs buffering and
    nobody gets evicted. ``acked`` trails ``cursor`` by whatever the
    client has not yet acknowledged; a reconnect resumes from the
    client's last delivered offset.
    """

    __slots__ = ("name", "cursor", "acked", "sent_batches", "sent_rows",
                 "replay_rows", "resumes", "_lock")

    def __init__(self, name: str, start_offset: int):
        self.name = name
        self.cursor = int(start_offset)   # next offset to send
        self.acked = int(start_offset)    # client-confirmed offset
        self.sent_batches = 0
        self.sent_rows = 0
        self.replay_rows = 0              # rows sent from history
        self.resumes = 0                  # catch-ups after falling behind
        self._lock = threading.Lock()

    def advance(self, upto: int, rows: int, replay: bool) -> None:
        with self._lock:
            self.cursor = max(self.cursor, int(upto))
            self.sent_batches += 1
            self.sent_rows += rows
            if replay:
                self.replay_rows += rows

    def ack(self, offset: int) -> None:
        """Record the client's confirmation; clamped to what was
        actually sent (a client cannot ack the future)."""
        with self._lock:
            self.acked = max(self.acked, min(int(offset), self.cursor))

    def lag(self, head: int) -> int:
        return max(0, int(head) - self.cursor)

    def stats(self) -> dict:
        with self._lock:
            return {"cursor": self.cursor, "acked": self.acked,
                    "sent_batches": self.sent_batches,
                    "sent_rows": self.sent_rows,
                    "replay_rows": self.replay_rows,
                    "resumes": self.resumes}


class Emitter:
    """Fans one query's result batches out to its sinks.

    Sink registration is thread-safe: the network edge attaches and
    detaches subscriber sinks from connection threads while the
    scheduler (or a parallel worker) is delivering.
    """

    def __init__(self, name: str):
        self.name = name
        self.sinks: List[Sink] = []
        self._sinks_lock = threading.Lock()
        self.total_batches = 0
        self.total_rows = 0
        self.last_delivery_time: Optional[int] = None

    def add_sink(self, sink: Sink) -> None:
        with self._sinks_lock:
            self.sinks.append(sink)

    def remove_sink(self, sink: Sink) -> None:
        """Detach *sink* if attached (no-op otherwise)."""
        with self._sinks_lock:
            self.sinks = [s for s in self.sinks if s is not sink]

    def deliver(self, result: Relation, now: int) -> None:
        self.total_batches += 1
        self.total_rows += result.row_count
        self.last_delivery_time = now
        with self._sinks_lock:
            sinks = list(self.sinks)
        for sink in sinks:
            sink.deliver(result, now)

    def __repr__(self) -> str:
        return (f"Emitter({self.name}, batches={self.total_batches}, "
                f"rows={self.total_rows})")
