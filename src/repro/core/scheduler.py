"""The DataCell scheduler: a Petri-net over baskets and factories.

*"The execution of the factories is orchestrated by the DataCell
scheduler, which implements a Petri-net model. The firing condition is
aligned to arrival of events; once there are tuples that may be relevant
to a waiting query, we trigger its evaluation."*

Places are baskets (tokens = pending tuples), transitions are factories;
receptors inject tokens, emitters remove them. :meth:`PetriNetScheduler.step`
is one net evaluation: pump receptors, let factories absorb basic
windows, fire every enabled transition (repeatedly, so factory chains
cascade within a step), then vacuum consumed prefixes.

The scheduler runs against a :class:`~repro.core.clock.Clock`; with a
:class:`~repro.core.clock.SimulatedClock` whole benchmark runs are
deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.basket import Basket
from repro.core.clock import Clock, SimulatedClock
from repro.core.factory import FAILED, Factory
from repro.core.receptor import Receptor
from repro.errors import FactoryError, SchedulerError

_MAX_CASCADE = 64
# a factory may legitimately fire many windows per step (catch-up after
# a pause, a burst of arrivals), but staying enabled for this many
# consecutive firings means it consumes nothing
_MAX_BURST = 100_000


class PetriNetScheduler:
    """Event-driven orchestration of receptors, factories, baskets."""

    def __init__(self, clock: Clock, recycler=None):
        self.clock = clock
        self.recycler = recycler
        self.receptors: List[Receptor] = []
        self.factories: List[Factory] = []
        self.baskets: Dict[str, Basket] = {}
        self.steps = 0
        self.total_fired = 0
        self.failed: List[FactoryError] = []
        # stop-the-net switch for inspection (demo pause button)
        self.paused = False

    # -- registration --------------------------------------------------

    def add_basket(self, basket: Basket) -> None:
        if basket.name in self.baskets:
            raise SchedulerError(f"basket {basket.name!r} already placed")
        self.baskets[basket.name] = basket

    def remove_basket(self, name: str) -> None:
        self.baskets.pop(name.lower(), None)
        if self.recycler is not None:
            # a later stream of the same name restarts oids at 0, which
            # would alias old cache keys — drop everything for the name
            self.recycler.purge_basket(name.lower())

    def add_receptor(self, receptor: Receptor) -> None:
        self.receptors.append(receptor)

    def add_factory(self, factory: Factory) -> None:
        self.factories.append(factory)

    def remove_factory(self, name: str) -> None:
        self.factories = [f for f in self.factories if f.name != name]

    # -- the net ---------------------------------------------------------

    def enabled_transitions(self, now: Optional[int] = None
                            ) -> List[Factory]:
        now = self.clock.now() if now is None else now
        return [f for f in self.factories
                if f.state != FAILED and f.enabled(now)]

    def step(self) -> Dict[str, int]:
        """One net evaluation at the current clock time."""
        if self.paused:
            return {"ingested": 0, "fired": 0, "dropped": 0}
        now = self.clock.now()
        self.steps += 1
        ingested = 0
        for receptor in self.receptors:
            ingested += receptor.pump(now)

        fired = 0
        for _round in range(_MAX_CASCADE):
            progressed = 0
            for factory in self.factories:
                if factory.state == FAILED:
                    continue
                try:
                    factory.poll(now)
                except FactoryError as exc:
                    self.failed.append(exc)
                    continue
                burst = 0
                while factory.enabled(now):
                    try:
                        factory.fire(now)
                    except FactoryError as exc:
                        self.failed.append(exc)
                        break
                    progressed += 1
                    burst += 1
                    if burst > _MAX_BURST:
                        raise SchedulerError(
                            f"factory {factory.name!r} stayed enabled "
                            f"after {_MAX_BURST} consecutive firings "
                            f"(did not quiesce; consuming nothing?)")
            fired += progressed
            if progressed == 0:
                break
        else:
            raise SchedulerError(
                "factory network did not quiesce (livelock?)")

        dropped = 0
        for basket in self.baskets.values():
            dropped += basket.vacuum()
        if self.recycler is not None and dropped:
            self.recycler.evict_dead(
                {name: b.first_oid for name, b in self.baskets.items()})
        self.total_fired += fired
        return {"ingested": ingested, "fired": fired, "dropped": dropped}

    # -- simulation drivers ------------------------------------------------

    def run_for(self, duration_ms: int, step_ms: int = 10
                ) -> Dict[str, int]:
        """Advance a simulated clock in fixed steps for *duration_ms*."""
        if not isinstance(self.clock, SimulatedClock):
            raise SchedulerError("run_for needs a SimulatedClock")
        if step_ms <= 0:
            raise SchedulerError("step_ms must be positive")
        totals = {"ingested": 0, "fired": 0, "dropped": 0}
        end = self.clock.now() + duration_ms
        while self.clock.now() < end:
            self.clock.advance(min(step_ms, end - self.clock.now()))
            out = self.step()
            for key in totals:
                totals[key] += out[key]
        return totals

    def run_until_drained(self, max_steps: int = 100000,
                          step_ms: int = 10) -> Dict[str, int]:
        """Step until every receptor is exhausted and no factory can fire.

        With a simulated clock, time advances to the next source event so
        runs take as many steps as there are distinct event times, not
        wall-clock duration.
        """
        totals = {"ingested": 0, "fired": 0, "dropped": 0}
        simulated = isinstance(self.clock, SimulatedClock)
        for _ in range(max_steps):
            out = self.step()
            for key in totals:
                totals[key] += out[key]
            live_receptors = [r for r in self.receptors
                              if not r.exhausted and not r.paused]
            if out["fired"] == 0 and out["ingested"] == 0 \
                    and not live_receptors:
                return totals
            if simulated and out["ingested"] == 0 and out["fired"] == 0:
                upcoming = [r.next_event_time() for r in live_receptors]
                upcoming = [t for t in upcoming if t is not None]
                if upcoming:
                    target = max(min(upcoming), self.clock.now() + 1)
                    self.clock.set(target)
                else:
                    self.clock.advance(step_ms)
        raise SchedulerError(f"did not drain within {max_steps} steps")

    # -- monitoring ----------------------------------------------------------

    def network_stats(self) -> Dict[str, Dict]:
        out = {
            "steps": self.steps,
            "total_fired": self.total_fired,
            "baskets": {n: b.stats() for n, b in self.baskets.items()},
            "factories": {f.name: f.stats() for f in self.factories},
            "failed": [str(e) for e in self.failed],
        }
        if self.recycler is not None:
            out["recycler"] = self.recycler.stats()
        return out
