"""The DataCell scheduler: a Petri-net over baskets and factories.

*"The execution of the factories is orchestrated by the DataCell
scheduler, which implements a Petri-net model. The firing condition is
aligned to arrival of events; once there are tuples that may be relevant
to a waiting query, we trigger its evaluation."*

Places are baskets (tokens = pending tuples), transitions are factories;
receptors inject tokens, emitters remove them. :meth:`PetriNetScheduler.step`
is one net evaluation: pump receptors, let factories absorb basic
windows, fire every enabled transition (repeatedly, so factory chains
cascade within a step), then vacuum consumed prefixes.

The scheduler runs against a :class:`~repro.core.clock.Clock`; with a
:class:`~repro.core.clock.SimulatedClock` whole benchmark runs are
deterministic.

Parallel firing
---------------

With ``parallel_workers > 1`` each cascade round computes the enabled
set, partitions it into conflict-free *waves* via a read/write
dependency graph over basket names (two factories conflict iff one
writes a basket the other reads or writes), and fires every wave on a
shared :class:`~concurrent.futures.ThreadPoolExecutor`. Chained query
networks stay correct because a factory writing an output basket lands
in an earlier wave than any enabled factory reading it, preserving the
serial (topological) firing order; factories that conflict with nothing
fire concurrently. The numpy kernels release the GIL, so independent
standing queries genuinely overlap on multicore hosts. The serial path
(``parallel_workers == 1``) remains the default — simulated-clock runs
stay deterministic unless parallelism is explicitly requested — and
both paths produce byte-identical emitted results.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.basket import Basket
from repro.core.clock import Clock, SimulatedClock
from repro.core.factory import FAILED, Factory
from repro.core.receptor import Receptor
from repro.errors import FactoryError, SchedulerError

_MAX_CASCADE = 64
# a factory may legitimately fire many windows per step (catch-up after
# a pause, a burst of arrivals), but staying enabled for this many
# consecutive firings means it consumes nothing
_MAX_BURST = 100_000
# keep only the most recent errors; a persistently failing factory
# would otherwise grow the list without bound (failed_total still
# counts every occurrence)
_MAX_FAILED_KEPT = 50


class PetriNetScheduler:
    """Event-driven orchestration of receptors, factories, baskets."""

    def __init__(self, clock: Clock, recycler=None,
                 parallel_workers: Optional[int] = 1,
                 max_failed_kept: int = _MAX_FAILED_KEPT):
        self.clock = clock
        self.recycler = recycler
        self.parallel_workers = self._resolve_workers(parallel_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self.receptors: List[Receptor] = []
        self.factories: List[Factory] = []
        self.baskets: Dict[str, Basket] = {}
        self.steps = 0
        self.total_fired = 0
        self.failed: Deque[FactoryError] = deque(maxlen=max_failed_kept)
        self.failed_total = 0
        # parallel-execution counters (monitor/shell read these)
        self.wave_count = 0
        self.wave_width_max = 0
        self.wave_width_sum = 0
        self.parallel_fires = 0
        # stop-the-net switch for inspection (demo pause button)
        self.paused = False

    @staticmethod
    def _resolve_workers(parallel_workers) -> int:
        """``None``/``1`` = serial; ``0``/``"auto"`` = one worker per
        core; any other positive int is taken literally."""
        if isinstance(parallel_workers, bool):
            # bool is an int subtype: True == 1 would silently run the
            # net serially when the caller asked for parallelism (and
            # False == 0 would silently mean "auto")
            raise SchedulerError(
                f"parallel_workers must be an int, None or 'auto', got "
                f"{parallel_workers!r}")
        if parallel_workers is None or parallel_workers == 1:
            return 1
        if parallel_workers == 0 or parallel_workers == "auto":
            return max(os.cpu_count() or 1, 1)
        workers = int(parallel_workers)
        if workers < 1:
            raise SchedulerError(
                f"parallel_workers must be >= 1 (or 0/'auto'), got "
                f"{parallel_workers!r}")
        return workers

    # -- worker pool lifecycle -----------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallel_workers,
                thread_name_prefix="datacell-worker")
        return self._pool

    def shutdown(self) -> None:
        """Release worker threads (idempotent; the pool is re-created
        lazily if the net steps again)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- registration --------------------------------------------------

    def add_basket(self, basket: Basket) -> None:
        # normalize at registration so remove_basket's lowercase pop
        # (and the recycler purge keyed on the same name) always hits
        name = basket.name.lower()
        if name in self.baskets:
            raise SchedulerError(f"basket {name!r} already placed")
        self.baskets[name] = basket

    def remove_basket(self, name: str) -> None:
        self.baskets.pop(name.lower(), None)
        if self.recycler is not None:
            # a later stream of the same name restarts oids at 0, which
            # would alias old cache keys — drop everything for the name
            self.recycler.purge_basket(name.lower())

    def add_receptor(self, receptor: Receptor) -> None:
        self.receptors.append(receptor)

    def add_factory(self, factory: Factory) -> None:
        self.factories.append(factory)

    def remove_factory(self, name: str) -> None:
        self.factories = [f for f in self.factories if f.name != name]

    # -- the net ---------------------------------------------------------

    def enabled_transitions(self, now: Optional[int] = None
                            ) -> List[Factory]:
        now = self.clock.now() if now is None else now
        return [f for f in self.factories
                if f.state != FAILED and f.enabled(now)]

    def _record_failure(self, exc: FactoryError) -> None:
        self.failed.append(exc)
        self.failed_total += 1

    def step(self) -> Dict[str, int]:
        """One net evaluation at the current clock time.

        While :attr:`paused` the net still pumps receptors — pause
        holds back *firing* (and vacuuming), not arrival; events keep
        landing in their baskets so nothing in flight is lost while
        the operator inspects the net.
        """
        now = self.clock.now()
        self.steps += 1
        ingested = 0
        for receptor in self.receptors:
            ingested += receptor.pump(now)
        if self.paused:
            return {"ingested": ingested, "fired": 0, "dropped": 0}

        fired = 0
        fire_round = self._serial_round if self.parallel_workers == 1 \
            else self._parallel_round
        for _round in range(_MAX_CASCADE):
            progressed = fire_round(now)
            fired += progressed
            if progressed == 0:
                break
        else:
            raise SchedulerError(
                "factory network did not quiesce (livelock?)")

        dropped = 0
        for basket in self.baskets.values():
            dropped += basket.vacuum()
        if self.recycler is not None and dropped:
            self.recycler.evict_dead(
                {name: b.first_oid for name, b in self.baskets.items()})
        if self.recycler is not None:
            self.recycler.autotune_tick()
        self.total_fired += fired
        return {"ingested": ingested, "fired": fired, "dropped": dropped}

    # -- firing rounds ---------------------------------------------------

    def _burst(self, factory: Factory, now: int
               ) -> Tuple[int, Optional[Exception]]:
        """Fire *factory* until it quiesces; ``(fires, error)``.

        Runs on a worker thread in parallel mode, so errors are
        returned rather than raised — the scheduler thread decides
        whether to quarantine (FactoryError) or abort the step
        (SchedulerError and anything unexpected).
        """
        burst = 0
        try:
            while factory.enabled(now):
                factory.fire(now)
                burst += 1
                if burst > _MAX_BURST:
                    raise SchedulerError(
                        f"factory {factory.name!r} stayed enabled "
                        f"after {_MAX_BURST} consecutive firings "
                        f"(did not quiesce; consuming nothing?)")
        except Exception as exc:
            return burst, exc
        return burst, None

    def _settle(self, fired: int, exc: Optional[Exception]) -> int:
        """Apply one burst outcome on the scheduler thread."""
        if exc is None:
            return fired
        if isinstance(exc, FactoryError):
            self._record_failure(exc)
            return fired
        raise exc

    def _serial_round(self, now: int) -> int:
        """Today's single-threaded cascade round (the default path)."""
        progressed = 0
        for factory in self.factories:
            if factory.state == FAILED:
                continue
            try:
                factory.poll(now)
            except FactoryError as exc:
                self._record_failure(exc)
                continue
            progressed += self._settle(*self._burst(factory, now))
        return progressed

    def _parallel_round(self, now: int) -> int:
        """One cascade round fired wave-by-wave on the worker pool."""
        runnable = [f for f in self.factories if f.state != FAILED]
        if not runnable:
            return 0
        pool = self._ensure_pool()
        # poll phase: each poll touches only its own factory's cursors
        # and caches (baskets are internally locked for reads), so all
        # polls run concurrently; the base class's poll is a no-op and
        # is skipped outright
        pollers = [f for f in runnable
                   if type(f).poll is not Factory.poll]
        if pollers:
            def _poll(factory: Factory) -> Optional[FactoryError]:
                try:
                    factory.poll(now)
                except FactoryError as exc:
                    return exc
                return None

            for exc in pool.map(_poll, pollers):
                if exc is not None:
                    self._record_failure(exc)
        enabled = [f for f in runnable
                   if f.state != FAILED and f.enabled(now)]
        progressed = 0
        for wave in self._partition_waves(enabled):
            self.wave_count += 1
            self.wave_width_max = max(self.wave_width_max, len(wave))
            self.wave_width_sum += len(wave)
            if len(wave) == 1:
                # no concurrency to gain: fire on the scheduler thread
                progressed += self._settle(*self._burst(wave[0], now))
                continue
            futures = [pool.submit(self._burst, factory, now)
                       for factory in wave]
            outcomes = [future.result() for future in futures]
            self.parallel_fires += sum(fired for fired, _exc in outcomes)
            # settle every outcome before raising: a fatal error in one
            # burst must not drop the other bursts' fire counts or
            # leave their FactoryErrors unrecorded
            fatal: Optional[Exception] = None
            for fired, exc in outcomes:
                progressed += fired
                if exc is None:
                    continue
                if isinstance(exc, FactoryError):
                    self._record_failure(exc)
                elif fatal is None:
                    fatal = exc
            if fatal is not None:
                raise fatal
        return progressed

    def _partition_waves(self, enabled: List[Factory]
                         ) -> List[List[Factory]]:
        """Split the enabled set into conflict-free waves.

        Two factories conflict iff one writes a basket the other reads
        or writes. Each factory is placed one wave after its latest
        conflicting predecessor (factory-list order), so conflicting
        pairs keep the serial firing order — in particular a chained
        network (``output_stream``) fires writer-before-reader, in
        topological order — while everything else shares a wave.
        """
        waves: List[List[Factory]] = []
        placed: List[Tuple[Set[str], Set[str], int]] = []
        for factory in enabled:
            reads = set(factory.input_streams())
            writes = set(factory.write_streams())
            wave_idx = 0
            for other_reads, other_writes, other_wave in placed:
                if writes & (other_reads | other_writes) \
                        or other_writes & reads:
                    wave_idx = max(wave_idx, other_wave + 1)
            placed.append((reads, writes, wave_idx))
            if wave_idx == len(waves):
                waves.append([])
            waves[wave_idx].append(factory)
        return waves

    # -- simulation drivers ------------------------------------------------

    def run_for(self, duration_ms: int, step_ms: int = 10
                ) -> Dict[str, int]:
        """Advance a simulated clock in fixed steps for *duration_ms*."""
        if not isinstance(self.clock, SimulatedClock):
            raise SchedulerError("run_for needs a SimulatedClock")
        if step_ms <= 0:
            raise SchedulerError("step_ms must be positive")
        totals = {"ingested": 0, "fired": 0, "dropped": 0}
        end = self.clock.now() + duration_ms
        while self.clock.now() < end:
            self.clock.advance(min(step_ms, end - self.clock.now()))
            out = self.step()
            for key in totals:
                totals[key] += out[key]
        return totals

    def run_until_drained(self, max_steps: int = 100000,
                          step_ms: int = 10) -> Dict[str, int]:
        """Step until every receptor is exhausted and no factory can fire.

        With a simulated clock, time advances to the next source event so
        runs take as many steps as there are distinct event times, not
        wall-clock duration.
        """
        totals = {"ingested": 0, "fired": 0, "dropped": 0}
        simulated = isinstance(self.clock, SimulatedClock)
        for _ in range(max_steps):
            out = self.step()
            for key in totals:
                totals[key] += out[key]
            live_receptors = [r for r in self.receptors
                              if not r.exhausted and not r.paused]
            if out["fired"] == 0 and out["ingested"] == 0 \
                    and not live_receptors:
                return totals
            if simulated and out["ingested"] == 0 and out["fired"] == 0:
                upcoming = [r.next_event_time() for r in live_receptors]
                upcoming = [t for t in upcoming if t is not None]
                if upcoming:
                    target = max(min(upcoming), self.clock.now() + 1)
                    self.clock.set(target)
                else:
                    self.clock.advance(step_ms)
        raise SchedulerError(f"did not drain within {max_steps} steps")

    # -- monitoring ----------------------------------------------------------

    def parallel_stats(self) -> Dict[str, float]:
        """Worker-pool utilization counters (all zero on the serial
        path)."""
        avg = (self.wave_width_sum / self.wave_count
               if self.wave_count else 0.0)
        return {"workers": self.parallel_workers,
                "waves": self.wave_count,
                "max_wave_width": self.wave_width_max,
                "avg_wave_width": round(avg, 3),
                "parallel_fires": self.parallel_fires}

    def network_stats(self) -> Dict[str, Dict]:
        out = {
            "steps": self.steps,
            "total_fired": self.total_fired,
            "baskets": {n: b.stats() for n, b in self.baskets.items()},
            "factories": {f.name: f.stats() for f in self.factories},
            "failed": [str(e) for e in self.failed],
            "failed_total": self.failed_total,
            "parallel": self.parallel_stats(),
        }
        if self.recycler is not None:
            out["recycler"] = self.recycler.stats()
        return out
