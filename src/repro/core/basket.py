"""Baskets: the lightweight columnar tables that buffer stream tuples.

From the paper: *"when an event stream enters the system via a receptor,
stream tuples are immediately stored in a lightweight table, called
basket. [...] Once a tuple has been seen by all relevant
queries/operators, it is dropped from its basket."*

A basket is a set of column BATs that share a dense oid range, plus one
TIMESTAMP BAT of arrival times (used by time-based windows). Tuples are
addressed by *absolute oids* that stay stable as the head is dropped, so
window bookkeeping survives draining. Each standing query registers a
:class:`Subscription`; :meth:`Basket.vacuum` deletes the prefix that
every subscription has released.

Concurrency contract (audited for the scheduler's parallel firing
waves): every structural mutation — append, vacuum, subscribe — and
every read that derives positions from ``first_oid`` holds the basket
lock, so threaded receptors and concurrent factory reads interleave
safely. A :class:`Subscription`'s cursors are single-writer (only the
owning factory advances them, under its firing lock); vacuum merely
*reads* ``released_upto``, and a stale read is safe — it can only make
vacuum drop less than it could, never tuples a subscriber still needs.
The parallel scheduler additionally guarantees a basket is never
appended to (output-basket writer) concurrently with a factory reading
it: such factories conflict and are fired in separate waves.
"""

from __future__ import annotations

import threading
from typing import (Any, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

import numpy as np

from repro.errors import StreamError
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.storage import types as dt
from repro.storage.schema import Schema

# append taps receive (lo_oid, hi_oid, now) after every append while the
# basket lock is held — callbacks must be tiny and lock-free (the net
# edge's replay subscriptions park on an Event set here)


class Subscription:
    """One query's consumption cursor over a basket.

    ``read_upto`` — next oid this subscriber has not yet seen.
    ``released_upto`` — tuples below this oid may be dropped for this
    subscriber (for sliding windows this trails ``read_upto`` by up to a
    window, unless the query caches intermediates and releases eagerly).
    """

    __slots__ = ("name", "read_upto", "released_upto", "paused")

    def __init__(self, name: str, start_oid: int):
        self.name = name
        self.read_upto = start_oid
        self.released_upto = start_oid
        self.paused = False

    def release(self, upto_oid: int) -> None:
        if upto_oid > self.released_upto:
            self.released_upto = upto_oid

    def __repr__(self) -> str:
        return (f"Subscription({self.name}, read={self.read_upto}, "
                f"released={self.released_upto})")


class Basket:
    """A columnar stream buffer with subscriber-driven garbage collection."""

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema
        self._bats: Dict[str, BAT] = {c.name: BAT(c.dtype)
                                      for c in schema.columns}
        self._arrival = BAT(dt.TIMESTAMP)
        self._subs: Dict[str, Subscription] = {}
        # per-range provenance stamps for chained output baskets:
        # (lo_oid, hi_oid, emit fingerprint) per producer append —
        # trimmed by vacuum once a range is entirely dropped
        self._stamps: List[Tuple[int, int, str]] = []
        self._lock = threading.RLock()
        self._pins = 0
        self.locked_by: Optional[str] = None
        # durability: when a StreamLog is attached every append is
        # mirrored to it under the same lock hold, so log offsets and
        # basket oids are one coordinate system
        self._log = None
        # paged history: when a PagedWindowBinder is attached, read
        # paths serve oid ranges below first_oid from log segments
        # (zero-copy views) instead of clamping them away
        self._pager = None
        self._taps: List[Any] = []
        # statistics (the demo's monitoring pane reads these)
        self.total_in = 0
        self.total_dropped = 0
        self.high_water = 0
        self.paused = False

    # -- oid bookkeeping ------------------------------------------------
    # the oid properties are intentionally lock-free: each is a single
    # read of values the GIL keeps coherent, and callers that need a
    # consistent (first, next) pair go through clamp_range/relation,
    # which take the lock

    @property
    def first_oid(self) -> int:
        return self._arrival.hseqbase

    @property
    def next_oid(self) -> int:
        return self._arrival.hseqbase + len(self._arrival)

    def __len__(self) -> int:
        return len(self._arrival)

    # -- ingestion --------------------------------------------------------

    def append_rows(self, rows: Iterable[Sequence[Any]], now: int) -> int:
        """Append tuples with arrival time *now*; returns count."""
        rows = list(rows)
        if not rows:
            return 0
        if self.paused:
            raise StreamError(f"stream {self.name!r} is paused")
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise StreamError(
                    f"basket {self.name}: expected {width} values, got "
                    f"{len(row)}")
        # stage each column as a storage array outside the lock: one
        # batch conversion per column instead of a per-row Python loop
        staged = [dt.coerce_column(coldef.dtype, [row[i] for row in rows])
                  for i, coldef in enumerate(self.schema.columns)]
        arrival = np.full(len(rows), now, dtype=np.int64)
        with self._lock:
            lo = self.next_oid
            for coldef, column in zip(self.schema.columns, staged):
                self._bats[coldef.name].extend(column)
            self._arrival.extend(arrival)
            self.total_in += len(rows)
            self.high_water = max(self.high_water, len(self))
            self._log_and_tap(lo, staged, arrival, now)
        return len(rows)

    def append_relation(self, rel: Relation, now: int) -> int:
        if rel.names != self.schema.names:
            rel = rel.renamed(self.schema.names)
        n = rel.row_count
        if n == 0:
            return 0
        arrival = np.full(n, now, dtype=np.int64)
        with self._lock:
            lo = self.next_oid
            for coldef in self.schema.columns:
                self._bats[coldef.name].append_bat(rel.column(coldef.name))
            self._arrival.extend(arrival)
            self.total_in += n
            self.high_water = max(self.high_water, len(self))
            self._log_and_tap(
                lo, [rel.column(c.name).values
                     for c in self.schema.columns], arrival, now)
        return n

    def append_stamped(self, rel: Relation, now: int,
                       fp: Optional[str]) -> Tuple[int, int]:
        """Append *rel* and stamp the new oid range with emit
        fingerprint *fp*; returns the appended ``(lo, hi)``.

        The chained-network path: an ``output_stream``
        :class:`~repro.core.emitter.BasketSink` appends each firing's
        payload through here so the range carries the producing plan's
        provenance, and the recycler can resolve a downstream stage's
        scan of exactly this range to the emitted payload. Append and
        stamp happen under one lock hold so a concurrent appender
        cannot interleave between them.
        """
        with self._lock:
            lo = self.next_oid
            n = self.append_relation(rel, now)
            hi = lo + n
            if n and fp is not None:
                self._stamps.append((lo, hi, fp))
            return lo, hi

    def range_stamp(self, lo_oid: int, hi_oid: int) -> Optional[str]:
        """The emit fingerprint stamped on exactly ``[lo_oid,
        hi_oid)``, or None when the range was not a stamped append."""
        with self._lock:
            for lo, hi, fp in reversed(self._stamps):
                if lo == lo_oid and hi == hi_oid:
                    return fp
            return None

    def range_stamps(self) -> List[Tuple[int, int, str]]:
        with self._lock:
            return list(self._stamps)

    # -- durability & taps -------------------------------------------------

    def attach_log(self, log) -> None:
        """Mirror every future append to *log* (a
        :class:`repro.store.log.StreamLog`). The log's next offset must
        equal this basket's next oid — offsets and oids are one
        coordinate system from here on."""
        with self._lock:
            if log.next_offset != self.next_oid:
                raise StreamError(
                    f"basket {self.name!r}: log offset "
                    f"{log.next_offset} != next oid {self.next_oid}")
            self._log = log

    @property
    def log(self):
        return self._log

    def attach_pager(self, pager) -> None:
        """Serve vacuumed history through *pager* (a
        :class:`repro.store.paging.PagedWindowBinder`). From here on
        ``relation``/``arrival_slice``/``oid_at_or_after`` extend below
        ``first_oid`` down to ``pager.floor`` — window cursors page
        over log-resident history instead of being clamped to the
        retained prefix."""
        with self._lock:
            self._pager = pager

    @property
    def pager(self):
        return self._pager

    def history_floor(self) -> int:
        """Oldest oid readable through this basket: the pager's
        retention floor when history is paged, else ``first_oid``."""
        pager = self._pager
        if pager is None:
            return self.first_oid
        return min(self.first_oid, pager.floor)

    def add_tap(self, tap) -> None:
        """Register an append tap ``tap(lo_oid, hi_oid, now)`` — called
        under the basket lock after every append. Callbacks must be
        tiny and lock-free (set an event, bump a counter)."""
        with self._lock:
            self._taps.append(tap)

    def remove_tap(self, tap) -> None:
        with self._lock:
            self._taps = [t for t in self._taps if t is not tap]

    def _log_and_tap(self, lo: int, columns: List[np.ndarray],
                     arrival: np.ndarray, now: int) -> None:
        hi = self.next_oid
        if self._log is not None:
            _llo, lhi = self._log.append(columns, arrival)
            if lhi != hi:
                raise StreamError(
                    f"basket {self.name!r}: log drifted to {lhi}, "
                    f"basket at {hi}")
        for tap in self._taps:
            tap(lo, hi, now)

    def durable_upto(self) -> int:
        """Oid below which tuples are persisted (``next_oid`` when the
        basket has no log — everything is as durable as it gets)."""
        log = self._log
        return self.next_oid if log is None else log.durable_offset

    # -- recovery adoption -------------------------------------------------

    def adopt_columns(self, base_oid: int,
                      columns: Dict[str, np.ndarray],
                      arrival: np.ndarray) -> int:
        """Adopt log-read column arrays as this basket's content.

        Zero-copy (``BAT.adopt_array``): the arrays become the BAT
        heaps, positioned at absolute oid *base_oid*. Only valid on a
        fresh, empty basket — the recovery path.
        """
        with self._lock:
            if len(self._arrival) or self._arrival.hseqbase:
                raise StreamError(
                    f"basket {self.name!r} is not fresh; cannot adopt")
            n = len(arrival)
            for coldef in self.schema.columns:
                values = columns[coldef.name]
                if len(values) != n:
                    raise StreamError(
                        f"basket {self.name!r}: column "
                        f"{coldef.name!r} has {len(values)} rows, "
                        f"arrival has {n}")
                self._bats[coldef.name] = BAT.adopt_array(
                    coldef.dtype, values, hseqbase=base_oid)
            self._arrival = BAT.adopt_array(dt.TIMESTAMP, arrival,
                                            hseqbase=base_oid)
            self.total_in = base_oid + n
            self.total_dropped = base_oid
            self.high_water = max(self.high_water, n)
            return n

    def rehydrate(self, base_oid: int, columns: Dict[str, np.ndarray],
                  arrival: np.ndarray) -> int:
        """Extend the retained head *downward* with log-read history.

        ``[base_oid, first_oid)`` must be exactly the range provided —
        a replay subscription starting below the retained prefix pulls
        the gap back out of the log through here.
        """
        with self._lock:
            n = len(arrival)
            if base_oid + n != self.first_oid:
                raise StreamError(
                    f"basket {self.name!r}: rehydrate range "
                    f"[{base_oid},{base_oid + n}) does not meet "
                    f"first oid {self.first_oid}")
            if n == 0:
                return 0
            for coldef in self.schema.columns:
                merged = np.concatenate(
                    [columns[coldef.name],
                     self._bats[coldef.name].values])
                self._bats[coldef.name] = BAT.adopt_array(
                    coldef.dtype, merged, hseqbase=base_oid)
            self._arrival = BAT.adopt_array(
                dt.TIMESTAMP,
                np.concatenate([arrival, self._arrival.values]),
                hseqbase=base_oid)
            self.total_dropped = max(0, self.total_dropped - n)
            self.high_water = max(self.high_water, len(self))
            return n

    # -- reading ------------------------------------------------------------

    def clamp_range(self, lo_oid: Optional[int],
                    hi_oid: Optional[int]) -> tuple:
        """Clamp an oid range to the readable region (None = unbounded).

        The readable region is the live basket, extended down to the
        pager's retention floor when log-resident history is paged
        (an explicit *lo_oid* below ``first_oid`` then survives the
        clamp and :meth:`relation` serves it from segment views). The
        recycler keys shared window slices on the clamped range so
        every phrasing of the same window maps to one cache entry.
        """
        with self._lock:
            floor = self.first_oid
            if self._pager is not None:
                floor = min(floor, self._pager.floor)
            lo = self.first_oid if lo_oid is None else max(lo_oid, floor)
            hi = self.next_oid if hi_oid is None else min(hi_oid,
                                                          self.next_oid)
            if hi < lo:
                hi = lo
            return lo, hi

    def relation(self, lo_oid: Optional[int] = None,
                 hi_oid: Optional[int] = None) -> Relation:
        """Tuples with oid in [lo_oid, hi_oid) as a relation.

        ``lo_oid=None`` means "from the retained head" — exactly the
        live basket, never paged history. An *explicit* ``lo_oid``
        below ``first_oid`` reaches into log-resident history when a
        pager is attached: the vacuumed prefix is served from sealed
        segment views (zero-copy for single-segment fixed-width
        windows) and stitched to the in-memory suffix. Without a pager
        the historic prefix is clamped away, as before.
        """
        pager = self._pager
        if (pager is not None and lo_oid is not None
                and lo_oid < self.first_oid):
            return self._paged_relation(lo_oid, hi_oid, pager)
        with self._lock:
            lo = self.first_oid if lo_oid is None else max(lo_oid,
                                                           self.first_oid)
            hi = self.next_oid if hi_oid is None else min(hi_oid,
                                                          self.next_oid)
            start = lo - self.first_oid
            stop = hi - self.first_oid
            if stop < start:
                stop = start
            return Relation(
                (c.name, self._bats[c.name].slice(start, stop))
                for c in self.schema.columns)

    def _paged_relation(self, lo_oid: int, hi_oid: Optional[int],
                        pager) -> Relation:
        """Serve ``[lo_oid, hi)`` with the sub-``first_oid`` prefix
        paged from the log. The in-memory suffix is copied under the
        basket lock (stable positions); the paged prefix is immutable
        on disk, so its read happens outside the lock and never blocks
        appends."""
        with self._lock:
            first = self.first_oid
            hi = self.next_oid if hi_oid is None else min(hi_oid,
                                                          self.next_oid)
            mem_rel = None
            if hi > first:
                stop = hi - first
                mem_rel = Relation(
                    (c.name, self._bats[c.name].slice(0, stop))
                    for c in self.schema.columns)
        lo = max(lo_oid, pager.floor)
        page_hi = min(hi, first)
        if page_hi <= lo:
            if mem_rel is not None:
                return mem_rel
            return Relation((c.name, BAT(c.dtype))
                            for c in self.schema.columns)
        paged = pager.relation(lo, page_hi)
        if mem_rel is None or mem_rel.row_count == 0:
            return paged
        cols = []
        for c in self.schema.columns:
            merged = np.concatenate(
                [np.asarray(paged.column(c.name).values),
                 mem_rel.column(c.name).values])
            cols.append((c.name, BAT.adopt_array(c.dtype, merged)))
        return Relation(cols)

    def snapshot_range(self, lo_oid: int, hi_oid: int
                       ) -> Tuple[Relation, Tuple[int, int]]:
        """Like :meth:`relation` but also returns the clamped
        ``(lo, hi)`` actually covered, decided under one lock hold.

        Replay readers need this: between deciding a range and copying
        it, vacuum may drop the head — the clamped lo tells the caller
        which prefix it must re-read from the durable log instead.
        """
        with self._lock:
            lo = max(lo_oid, self.first_oid)
            hi = min(hi_oid, self.next_oid)
            if hi < lo:
                hi = lo
            start = lo - self.first_oid
            stop = hi - self.first_oid
            rel = Relation(
                (c.name, self._bats[c.name].slice(start, stop))
                for c in self.schema.columns)
            return rel, (lo, hi)

    def arrival_slice(self, lo_oid: int, hi_oid: int
                      ) -> Tuple[np.ndarray, Tuple[int, int]]:
        """Arrival timestamps for oids in ``[lo_oid, hi_oid)``, plus
        the clamped ``(lo, hi)`` actually covered.

        After a partial vacuum ``lo_oid`` may fall below ``first_oid``;
        silently clamping to position 0 used to hand back an array
        *misaligned* with the requested oid range (``result[i]`` was
        not the arrival of ``lo_oid + i``). Returning the clamped
        bounds alongside keeps time-window callers from misattributing
        arrivals: ``result[i]`` is the arrival time of oid
        ``clamped_lo + i``. With a pager attached the historic prefix
        down to the retention floor is served from the log's ``__ts``
        segments instead of being clamped away.
        """
        pager = self._pager
        with self._lock:
            first = self.first_oid
            lo = max(lo_oid, first)
            hi = min(hi_oid, self.next_oid)
            if hi < lo:
                hi = lo
            start = lo - first
            stop = hi - first
            mem = self._arrival.values[start:stop].copy()
        if pager is None or lo_oid >= first:
            return mem, (lo, hi)
        page_lo = max(lo_oid, pager.floor)
        page_hi = min(min(hi_oid, self.next_oid), first)
        if page_hi <= page_lo:
            return mem, (lo, hi)
        paged = np.asarray(pager.arrival(page_lo, page_hi))
        if len(paged) != page_hi - page_lo:
            # retention raced us past page_lo; keep alignment by
            # trusting only the suffix the pager actually returned
            page_lo = page_hi - len(paged)
        if len(mem) == 0:
            return paged, (page_lo, page_lo + len(paged))
        return (np.concatenate([paged, mem]),
                (page_lo, page_lo + len(paged) + len(mem)))

    def oid_at_or_after(self, instant_ms: int) -> int:
        """Smallest readable oid whose arrival time is >= *instant_ms*.

        Searches the retained arrival BAT; when the answer clamps to
        ``first_oid`` and a pager is attached, the search extends into
        log-resident history — a time window whose lower bound predates
        the vacuum floor resolves to the true historic oid instead of
        silently snapping to the retained head.
        """
        with self._lock:
            pos = int(np.searchsorted(self._arrival.values, instant_ms,
                                      side="left"))
            first = self.first_oid
        pager = self._pager
        if pos == 0 and pager is not None and pager.floor < first:
            return pager.oid_at_or_after(instant_ms, first)
        return first + pos

    def column(self, name: str) -> BAT:
        return self._bats[name.lower()]

    # -- subscriptions & draining ----------------------------------------------

    def subscribe(self, name: str, from_start: bool = False,
                  start_oid: Optional[int] = None) -> Subscription:
        """Register a consumer; new subscribers start at the stream head
        unless ``from_start`` replays the readable prefix or
        *start_oid* positions the cursor explicitly. Explicit cursors
        clamp to the retained oid range — except when a pager is
        attached, in which case they may start as low as the pager's
        retention floor and the factory's reads page the historic
        prefix out of the log. ``from_start`` likewise starts at the
        pager floor when history is paged."""
        with self._lock:
            if name in self._subs:
                raise StreamError(
                    f"subscription {name!r} already exists on basket "
                    f"{self.name!r}")
            floor = self.first_oid
            if self._pager is not None:
                floor = min(floor, self._pager.floor)
            if start_oid is not None:
                start = min(max(start_oid, floor), self.next_oid)
            else:
                start = floor if from_start else self.next_oid
            sub = Subscription(name, start)
            self._subs[name] = sub
            return sub

    def unsubscribe(self, name: str) -> None:
        with self._lock:
            self._subs.pop(name, None)

    def subscriptions(self) -> List[Subscription]:
        with self._lock:
            return list(self._subs.values())

    def vacuum(self) -> int:
        """Drop the prefix every subscription has released; returns the
        number of tuples dropped. With no subscribers nothing is dropped
        (the basket is then an unread buffer, like a table). While any
        factory pins the basket (a plan body in flight) vacuuming is
        deferred to the next step — dropping the head would shift
        positions under a concurrent reader."""
        with self._lock:
            if self._pins or not self._subs:
                return 0
            floor = min(s.released_upto for s in self._subs.values())
            if self._log is not None:
                # never drop tuples the log has not persisted yet: a
                # crash would lose them from both memory and disk
                floor = min(floor, self._log.durable_offset)
            drop = floor - self.first_oid
            if drop <= 0:
                return 0
            for bat in self._bats.values():
                bat.delete_head(drop)
            self._arrival.delete_head(drop)
            self.total_dropped += drop
            if self._stamps:
                # stamps whose range is entirely vacuumed can never be
                # resolved again
                self._stamps = [s for s in self._stamps
                                if s[1] > self.first_oid]
            return drop

    # -- locking (factories bracket plan bodies with these) -------------------------
    # a *shared* pin latch, not an exclusive hold: concurrently firing
    # factories all read immutable materialized slices, so excluding
    # each other would serialize the scheduler's parallel waves for no
    # correctness gain. Pinning only defers vacuum (the one structural
    # change that shifts positions); appends stay safe because slices
    # snapshot the oid range before the plan body runs.

    def lock(self, owner: str) -> None:
        with self._lock:
            self._pins += 1
            self.locked_by = owner

    def unlock(self, owner: str) -> None:
        with self._lock:
            self._pins = max(self._pins - 1, 0)
            if self._pins == 0:
                self.locked_by = None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self), "total_in": self.total_in,
                    "total_dropped": self.total_dropped,
                    "high_water": self.high_water,
                    "subscribers": len(self._subs),
                    "stamps": len(self._stamps)}

    def __repr__(self) -> str:
        return (f"Basket({self.name}, size={len(self)}, "
                f"oids=[{self.first_oid},{self.next_oid}))")
