"""Live mode: wall-clock execution with threaded receptors.

The paper's receptors and emitters are "separate processes per stream
and per client". Simulation mode (the default everywhere else) folds
them into the deterministic scheduler loop; :class:`LiveRunner` is the
faithful concurrent variant: one daemon thread per stream source pushes
tuples as their timestamps come due against a
:class:`~repro.core.clock.WallClock`, while a scheduler thread keeps
evaluating the Petri net. Baskets are internally locked, so receptor
appends and factory reads interleave safely.

Use for interactive/demo deployments::

    engine = DataCellEngine(clock=WallClock())
    runner = LiveRunner(engine)
    runner.attach("sensors", RateSource(rows, rate=100))
    runner.start()
    ...               # results arrive as wall-clock time passes
    runner.stop()
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.core.receptor import ThreadedReceptor
from repro.errors import StreamError
from repro.streams.source import StreamSource


# stop() drains until no transition is enabled; a chained network of N
# stages needs at most N steps, so this bound only guards against a
# factory that stays enabled while consuming nothing
_STOP_DRAIN_STEPS = 64


def drain_scheduler(scheduler, max_steps: int = _STOP_DRAIN_STEPS) -> int:
    """Step *scheduler* until no transition is enabled (bounded).

    A single final step is not enough for chained ``output_stream``
    networks: a firing in the last step can enable a downstream factory
    whose poll happens only on the *next* step, stranding tuples in the
    intermediate basket. Returns the number of steps taken. Shared by
    :meth:`LiveRunner.stop` and the network server's shutdown path.
    """
    steps = 0
    for _ in range(max_steps):
        out = scheduler.step()
        steps += 1
        if out["fired"] == 0 and out["ingested"] == 0 \
                and not scheduler.enabled_transitions():
            break
    return steps


class LiveRunner:
    """Runs one engine continuously on real time."""

    def __init__(self, engine: DataCellEngine,
                 step_interval_s: float = 0.005):
        if not isinstance(engine.clock, WallClock):
            raise StreamError("LiveRunner needs an engine on a WallClock")
        self.engine = engine
        self.step_interval_s = step_interval_s
        self._receptors: List[ThreadedReceptor] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.steps = 0

    def attach(self, stream: str, source: StreamSource,
               name: Optional[str] = None) -> ThreadedReceptor:
        """Create a threaded receptor for *stream* (started by
        :meth:`start`)."""
        if self._thread is not None:
            raise StreamError("attach sources before start()")
        basket = self.engine.basket(stream)
        receptor = ThreadedReceptor(
            name or f"{basket.name}_live{len(self._receptors)}",
            basket, source, self.engine.clock)
        self._receptors.append(receptor)
        return receptor

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise StreamError("runner already started")
        for receptor in self._receptors:
            receptor.start()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="datacell-scheduler")
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            self.engine.scheduler.step()
            self.steps += 1
            time.sleep(self.step_interval_s)

    def stop(self, timeout_s: float = 2.0) -> None:
        """Stop receptors and the scheduler thread (idempotent)."""
        self._stop.set()
        for receptor in self._receptors:
            receptor.stop(timeout_s)
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None
        # drain everything already ingested — a bounded loop, not one
        # step, so chained output_stream networks flush stage by stage
        drain_scheduler(self.engine.scheduler)

    def drained(self) -> bool:
        """True when every attached source is exhausted and no factory
        can fire."""
        if any(not r.exhausted for r in self._receptors):
            return False
        return not self.engine.scheduler.enabled_transitions()

    def wait_drained(self, timeout_s: float = 10.0) -> bool:
        """Block until :meth:`drained` (or timeout); returns success."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.drained():
                return True
            time.sleep(0.01)
        return False

    def __enter__(self) -> "LiveRunner":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
