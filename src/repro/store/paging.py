"""Paged window binding: zero-copy BAT views over sealed log segments.

The durable log keeps vacuumed history on disk; until now the only way
a factory could window over it was :meth:`Basket.rehydrate` — a full
``np.concatenate`` copy of the *entire* missing range back into basket
memory, which defeats the point of vacuuming and makes ``from_start``
registration over a long log an O(history) allocation.

:class:`PagedWindowBinder` instead binds sealed segment files as
read-only ``np.memmap`` views (``segment.map_rows``) and hands windows
out as BATs adopted over those views (``BAT.adopt_view``) — only the
pages a kernel actually touches are ever faulted in, so peak RSS tracks
the *window*, not the log. String columns have no fixed stride and fall
back to the copying ``segment.read_rows``; so does the unsealed tail
segment (its file is still being appended — only sealed, immutable
files are mapped). Windows spanning several segments are stitched with
one bounded copy of just the window.

The binder is attached to a basket (``Basket.attach_pager``); the
basket's read paths — ``relation``, ``arrival_slice``,
``oid_at_or_after``, ``clamp_range`` — consult it whenever a requested
range dips below ``first_oid``, which is how ``WindowState`` and
``BasicWindowTracker`` transparently window over log-resident history.

Retention safety: sealed segment files are immutable and only ever
*unlinked* (never rewritten), so on POSIX a mapping bound before the
unlink stays valid — the kernel keeps the inode until the last map is
dropped. The binder re-checks ``log.durable_floor`` before binding, so
new reads never start below the retention floor.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import StoreError
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.storage import types as dt
from repro.storage.schema import Schema
from repro.store import segment as seg
from repro.store.log import ARRIVAL_COLUMN, SegmentInfo, StreamLog

DEFAULT_MAX_MAPPED_SEGMENTS = 32


class PagedWindowBinder:
    """Windows over log-resident history as (mostly) zero-copy BATs.

    One binder per (basket, log) pair. Thread-safe: the map cache has
    its own lock and segment files below the durable watermark are
    immutable, so concurrent factory reads need no basket lock.
    """

    def __init__(self, log: StreamLog, schema: Schema,
                 max_mapped_segments: int = DEFAULT_MAX_MAPPED_SEGMENTS):
        self.log = log
        self.schema = schema
        self.max_mapped_segments = max(1, int(max_mapped_segments))
        # LRU of (segment base, column) -> memmap; capped in *entries*
        # (segments x columns) so wide schemas do not hold every
        # segment of the log mapped at once
        self._maps: "OrderedDict[Tuple[int, str], np.ndarray]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.map_hits = 0
        self.map_misses = 0
        self.paged_reads = 0
        self.paged_rows = 0

    @property
    def floor(self) -> int:
        """Oldest offset still pageable (the log's retention floor)."""
        return self.log.durable_floor

    # -- segment access -------------------------------------------------

    def _max_entries(self) -> int:
        return self.max_mapped_segments * (len(self.schema.columns) + 1)

    def _mapped(self, info: SegmentInfo, col: str,
                dtype: dt.DataType) -> Optional[np.ndarray]:
        """Whole-segment memmap for one sealed fixed-width column, or
        ``None`` when the segment must be read by copy (string column,
        unsealed tail, map failure)."""
        if not info.sealed or dtype.is_string or info.rows == 0:
            return None
        key = (info.base, col)
        with self._lock:
            mm = self._maps.get(key)
            if mm is not None:
                self._maps.move_to_end(key)
                self.map_hits += 1
                return mm
        try:
            mm = seg.map_rows(dtype, self.log.column_path(info.base, col),
                              0, info.rows)
        except StoreError:
            return None
        with self._lock:
            self.map_misses += 1
            self._maps[key] = mm
            while len(self._maps) > self._max_entries():
                self._maps.popitem(last=False)
        return mm

    def _column_chunks(self, col: str, dtype: dt.DataType, lo: int,
                       hi: int, segments: List[SegmentInfo]
                       ) -> List[np.ndarray]:
        chunks: List[np.ndarray] = []
        for info in segments:
            s_lo = max(lo, info.base)
            s_hi = min(hi, info.end)
            if s_hi <= s_lo:
                continue
            start = s_lo - info.base
            count = s_hi - s_lo
            mm = self._mapped(info, col, dtype)
            if mm is not None:
                chunks.append(mm[start:start + count])
            else:
                chunks.append(seg.read_rows(
                    dtype, self.log.column_path(info.base, col),
                    start, count))
        return chunks

    def _clamp(self, lo: int, hi: int,
               segments: List[SegmentInfo]) -> Tuple[int, int]:
        floor = segments[0].base if segments else 0
        lo = max(lo, floor)
        hi = min(hi, self.log.durable_offset)
        return lo, max(lo, hi)

    # -- window reads ---------------------------------------------------

    def relation(self, lo: int, hi: int) -> Relation:
        """Log offsets ``[lo, hi)`` as a relation of read-only BATs.

        Single-segment fixed-width windows are pure views
        (``BAT.adopt_view`` over a memmap slice); multi-segment windows
        and string columns pay one copy bounded by the window size —
        never the log size. *lo* clamps to the retention floor; the
        caller detects the clamp via row count if it cares.
        """
        segments = self.log.segment_table()
        lo, hi = self._clamp(lo, hi, segments)
        cols = []
        for coldef in self.schema.columns:
            chunks = self._column_chunks(coldef.name, coldef.dtype,
                                         lo, hi, segments)
            if len(chunks) == 1:
                arr = chunks[0]
                if arr.flags.owndata and arr.flags.writeable:
                    bat = BAT.adopt_array(coldef.dtype, arr, hseqbase=lo)
                else:
                    bat = BAT.adopt_view(coldef.dtype, arr, hseqbase=lo)
            elif chunks:
                bat = BAT.adopt_array(coldef.dtype,
                                      np.concatenate(chunks),
                                      hseqbase=lo)
            else:
                bat = BAT(coldef.dtype, hseqbase=lo)
            cols.append((coldef.name, bat))
        self.paged_reads += 1
        self.paged_rows += hi - lo
        return Relation(cols)

    def arrival(self, lo: int, hi: int) -> np.ndarray:
        """Arrival timestamps for ``[lo, hi)`` (read-only; may be a
        memmap view — do not mutate)."""
        segments = self.log.segment_table()
        lo, hi = self._clamp(lo, hi, segments)
        chunks = self._column_chunks(ARRIVAL_COLUMN, dt.TIMESTAMP,
                                     lo, hi, segments)
        if not chunks:
            return dt.TIMESTAMP.empty(0)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def oid_at_or_after(self, instant_ms: int, hi_oid: int) -> int:
        """Smallest log offset in ``[floor, hi_oid)`` whose arrival is
        ``>= instant_ms``; *hi_oid* when there is none.

        Arrival times are monotone across the log, so this walks the
        segment table and binary-searches inside the first segment
        whose last arrival reaches *instant_ms* — O(segments + log
        slide), touching at most one segment's timestamp file.
        """
        segments = self.log.segment_table()
        for info in segments:
            if info.base >= hi_oid or info.rows == 0:
                continue
            count = min(hi_oid, min(info.end, self.log.durable_offset)) \
                - info.base
            if count <= 0:
                continue
            ts = self._mapped(info, ARRIVAL_COLUMN, dt.TIMESTAMP)
            if ts is None:
                ts = seg.read_rows(
                    dt.TIMESTAMP,
                    self.log.column_path(info.base, ARRIVAL_COLUMN),
                    0, count)
            sub = ts[:count]
            if len(sub) == 0 or sub[-1] < instant_ms:
                continue
            pos = int(np.searchsorted(sub, instant_ms, side="left"))
            return info.base + pos
        return hi_oid

    def stats(self) -> Dict[str, int]:
        with self._lock:
            mapped = len(self._maps)
        return {"floor": self.floor,
                "mapped_files": mapped,
                "map_hits": self.map_hits,
                "map_misses": self.map_misses,
                "paged_reads": self.paged_reads,
                "paged_rows": self.paged_rows}

    def __repr__(self) -> str:
        return (f"PagedWindowBinder({self.log.name}, "
                f"floor={self.floor}, mapped={len(self._maps)})")
