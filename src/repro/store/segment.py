"""Columnar log segments: one append-only file per column.

A segment holds ``[base, base + rows)`` of a stream's log in the same
columnar shape the in-memory baskets use — one file per column in the
column's *native storage dtype* plus one ``__ts`` file of int64 arrival
timestamps — so recovery can rebuild a basket's ``VectorHeap`` buffers
with a single bulk read per column and adopt them zero-copy
(``BAT.adopt_array``).

Fixed-width columns (INT/FLOAT/TIMESTAMP/BOOLEAN) are raw value bytes;
a complete row is ``itemsize`` bytes, so a torn tail is whatever is not
a multiple of ``itemsize``. STRING columns are length-prefixed frames —
``uint32 little-endian byte length | utf-8 payload`` — with
``0xFFFFFFFF`` as the nil sentinel; a torn tail is the trailing bytes
that do not parse as a complete frame.

:class:`FaultInjector` implements the ``REPRO_STORE_CRASH_AFTER_BYTES``
test knob: once a byte budget is exhausted the writer lands only the
partial prefix of the current write and raises
:class:`~repro.errors.InjectedCrash`, deterministically producing the
torn tails the recovery tests exercise.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Optional, Tuple

import numpy as np

from repro.errors import InjectedCrash, StoreError
from repro.storage import types as dt

# STRING frame header: uint32 little-endian payload byte length
_LEN = struct.Struct("<I")
STRING_NIL = 0xFFFFFFFF
_MAX_STRING_BYTES = STRING_NIL - 1

CRASH_ENV = "REPRO_STORE_CRASH_AFTER_BYTES"


class FaultInjector:
    """A shared byte budget that turns into a deterministic torn tail.

    Every segment write asks :meth:`take` how many of its bytes may
    land on disk. Once the budget runs out the writer persists only
    the allowed prefix and raises :class:`InjectedCrash` — from then on
    the injector allows nothing, so a multi-log engine stops persisting
    everywhere at one well-defined point.
    """

    def __init__(self, budget_bytes: int):
        self.budget_bytes = int(budget_bytes)
        self._remaining = int(budget_bytes)
        self._lock = threading.Lock()
        self.tripped = False

    @classmethod
    def from_env(cls) -> Optional["FaultInjector"]:
        raw = os.environ.get(CRASH_ENV)
        if not raw:
            return None
        try:
            return cls(int(raw))
        except ValueError:
            raise StoreError(
                f"{CRASH_ENV}={raw!r} is not an integer") from None

    def take(self, nbytes: int) -> int:
        """Bytes of an *nbytes* write allowed on disk; trips once the
        budget is exceeded (the caller must then raise
        :class:`InjectedCrash` after the partial write)."""
        with self._lock:
            allowed = max(0, min(nbytes, self._remaining))
            self._remaining -= nbytes
            if self._remaining < 0:
                self.tripped = True
            return allowed


def faulty_write(f, data: bytes, fault: Optional[FaultInjector]) -> None:
    """Write *data* to file object *f*, honoring the fault injector."""
    if fault is not None:
        allowed = fault.take(len(data))
        if allowed < len(data):
            f.write(data[:allowed])
            f.flush()
            os.fsync(f.fileno())
            raise InjectedCrash(
                f"injected crash after {fault.budget_bytes} bytes")
    f.write(data)


# ---------------------------------------------------------------------------
# encoding / decoding
# ---------------------------------------------------------------------------

def encode_values(dtype: dt.DataType, values: np.ndarray) -> bytes:
    """Storage values -> segment file bytes."""
    if not dtype.is_string:
        arr = np.ascontiguousarray(values, dtype=dtype.np_dtype)
        return arr.tobytes()
    out = bytearray()
    for v in values:
        if v is None:
            out += _LEN.pack(STRING_NIL)
            continue
        payload = v.encode("utf-8") if isinstance(v, str) \
            else str(v).encode("utf-8")
        if len(payload) > _MAX_STRING_BYTES:
            raise StoreError("string value too large for segment frame")
        out += _LEN.pack(len(payload))
        out += payload
    return bytes(out)


def scan_strings(buf: bytes, limit: Optional[int] = None
                 ) -> Tuple[int, int]:
    """``(rows, clean_bytes)`` of complete frames at the front of *buf*.

    Stops at the first incomplete frame (the torn tail) or after
    *limit* rows.
    """
    pos = 0
    rows = 0
    n = len(buf)
    while pos + _LEN.size <= n and (limit is None or rows < limit):
        (ln,) = _LEN.unpack_from(buf, pos)
        if ln == STRING_NIL:
            pos += _LEN.size
            rows += 1
            continue
        end = pos + _LEN.size + ln
        if end > n:
            break
        pos = end
        rows += 1
    return rows, pos


def decode_strings(buf: bytes, start_row: int, count: int) -> np.ndarray:
    """Object array of *count* string values starting at *start_row*."""
    out = np.empty(count, dtype=object)
    pos = 0
    skipped, pos = _skip_strings(buf, start_row)
    if skipped < start_row:
        raise StoreError(
            f"string column truncated: wanted row {start_row}, "
            f"file holds {skipped}")
    for i in range(count):
        if pos + _LEN.size > len(buf):
            raise StoreError("string column truncated mid-read")
        (ln,) = _LEN.unpack_from(buf, pos)
        pos += _LEN.size
        if ln == STRING_NIL:
            out[i] = None
            continue
        if pos + ln > len(buf):
            raise StoreError("string column truncated mid-read")
        out[i] = buf[pos:pos + ln].decode("utf-8")
        pos += ln
    return out


def _skip_strings(buf: bytes, rows: int) -> Tuple[int, int]:
    pos = 0
    skipped = 0
    while skipped < rows and pos + _LEN.size <= len(buf):
        (ln,) = _LEN.unpack_from(buf, pos)
        pos += _LEN.size
        if ln != STRING_NIL:
            pos += ln
        skipped += 1
    return skipped, pos


# ---------------------------------------------------------------------------
# file-level helpers (one column file of one segment)
# ---------------------------------------------------------------------------

def complete_rows(dtype: dt.DataType, path: str) -> Tuple[int, int]:
    """``(rows, clean_bytes)`` of complete rows in a column file.

    A missing file counts as empty — recovery treats it like a crash
    before the first byte landed.
    """
    try:
        size = os.path.getsize(path)
    except OSError:
        return 0, 0
    if not dtype.is_string:
        item = dtype.np_dtype.itemsize
        rows = size // item
        return rows, rows * item
    with open(path, "rb") as f:
        buf = f.read()
    return scan_strings(buf)


def row_byte_extent(dtype: dt.DataType, path: str, rows: int) -> int:
    """Byte length of the first *rows* complete rows of a column file."""
    if not dtype.is_string:
        return rows * dtype.np_dtype.itemsize
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError:
        return 0
    found, clean = scan_strings(buf, limit=rows)
    if found < rows:
        raise StoreError(
            f"{path}: wanted {rows} rows for truncation, found {found}")
    return clean


def map_rows(dtype: dt.DataType, path: str, start: int,
             count: int) -> Optional[np.ndarray]:
    """Zero-copy read-only view of *count* rows starting at *start*.

    Fixed-width columns of a **sealed** segment map straight off disk
    via ``np.memmap`` — no bytes are materialized until a kernel walks
    the window. Returns ``None`` for string columns (length-prefixed
    frames have no fixed stride; callers fall back to the copying
    :func:`read_rows`). The caller must treat the array as immutable
    and must only map sealed segments: the file is never rewritten in
    place, so on POSIX the mapping stays valid even after retention
    unlinks the file.
    """
    if dtype.is_string:
        return None
    if count <= 0:
        return dtype.empty(0)
    item = dtype.np_dtype.itemsize
    try:
        mm = np.memmap(path, dtype=dtype.np_dtype, mode="r",
                       offset=start * item, shape=(count,))
    except (OSError, ValueError) as exc:
        raise StoreError(f"cannot map segment column {path}: "
                         f"{exc}") from exc
    return mm


def read_rows(dtype: dt.DataType, path: str, start: int,
              count: int) -> np.ndarray:
    """Read *count* storage values starting at row *start*.

    Returns a fresh, writable, owning array — exactly what
    ``BAT.adopt_array`` needs for zero-copy adoption.
    """
    if count <= 0:
        return dtype.empty(0)
    if not dtype.is_string:
        item = dtype.np_dtype.itemsize
        try:
            with open(path, "rb") as f:
                f.seek(start * item)
                arr = np.fromfile(f, dtype=dtype.np_dtype, count=count)
        except OSError as exc:
            raise StoreError(f"cannot read segment column {path}: "
                             f"{exc}") from exc
        if len(arr) != count:
            raise StoreError(
                f"{path}: wanted {count} rows at {start}, got {len(arr)}")
        return arr
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as exc:
        raise StoreError(f"cannot read segment column {path}: "
                         f"{exc}") from exc
    return decode_strings(buf, start, count)
