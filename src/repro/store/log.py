"""Per-stream durable log: rolling columnar segments + JSON manifest.

Layout of one stream's log directory::

    <dir>/manifest.json            schema, segment table, knobs
    <dir>/<base>.<column>          raw column bytes of segment <base>
    <dir>/<base>.__ts              int64 arrival timestamps

Log *offsets are basket oids*: the n-th tuple ever admitted to the
stream has offset n in the log and absolute oid n in the basket, so
subscriber cursors, window cursors, emit stamps and replay all share
one coordinate system.

Writes go through a **group-commit** writer thread: appends enqueue the
already-staged column arrays (no copy — the basket's staging buffers
are immutable after admission) and the writer drains whatever has
accumulated into one write+flush(+fsync) per group, so the hot path
pays one syscall batch per scheduler beat rather than per append.
``durability="async"`` flushes to the OS per group (survives a process
crash); ``"fsync"`` additionally fsyncs (survives power loss).
``inline=True`` bypasses the thread and persists synchronously inside
:meth:`append` — the deterministic mode the crash-equivalence tests
drive.

Recovery (:class:`StreamLog` opened over an existing directory) trusts
the manifest's sealed segments, re-scans the unsealed tail segment, and
truncates every column file back to the *minimum complete row count*
across columns — a torn group commit leaves columns of unequal length,
and only whole rows may survive.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InjectedCrash, StoreError
from repro.storage import types as dt
from repro.storage.schema import Schema
from repro.store import segment as seg

_FORMAT_VERSION = 1
MANIFEST = "manifest.json"
ARRIVAL_COLUMN = "__ts"
DURABILITY_MODES = ("off", "async", "fsync")

DEFAULT_SEGMENT_ROWS = 4096


class SegmentInfo:
    """One entry of the manifest's segment table."""

    __slots__ = ("base", "rows", "sealed")

    def __init__(self, base: int, rows: int, sealed: bool):
        self.base = base
        self.rows = rows
        self.sealed = sealed

    @property
    def end(self) -> int:
        return self.base + self.rows

    def to_json(self) -> dict:
        return {"base": self.base, "rows": self.rows,
                "sealed": self.sealed}

    @classmethod
    def from_json(cls, obj: dict) -> "SegmentInfo":
        return cls(int(obj["base"]), int(obj["rows"]),
                   bool(obj["sealed"]))


class StreamLog:
    """Append-only segmented log for one stream."""

    def __init__(self, directory: str, name: str, schema: Schema,
                 segment_rows: int = DEFAULT_SEGMENT_ROWS,
                 durability: str = "async", inline: bool = False,
                 fault: Optional[seg.FaultInjector] = None,
                 retain_ms: Optional[int] = None,
                 retain_bytes: Optional[int] = None):
        if durability not in ("async", "fsync"):
            raise StoreError(
                f"unknown durability mode {durability!r} for a live log "
                f"(expected 'async' or 'fsync')")
        if segment_rows < 1:
            raise StoreError("segment_rows must be >= 1")
        if retain_ms is not None and retain_ms < 0:
            raise StoreError("retain_ms must be >= 0")
        if retain_bytes is not None and retain_bytes < 0:
            raise StoreError("retain_bytes must be >= 0")
        if any(c.name == ARRIVAL_COLUMN for c in schema.columns):
            raise StoreError(
                f"column name {ARRIVAL_COLUMN!r} is reserved by the log")
        self.directory = directory
        self.name = name.lower()
        self.schema = schema
        self.segment_rows = int(segment_rows)
        self.durability = durability
        self.inline = bool(inline)
        self.retain_ms = retain_ms
        self.retain_bytes = retain_bytes
        self._fault = fault
        # (name, dtype) for every persisted file of a segment: the
        # schema columns plus the arrival-timestamp column
        self._cols: List[Tuple[str, dt.DataType]] = \
            [(c.name, c.dtype) for c in schema.columns] + \
            [(ARRIVAL_COLUMN, dt.TIMESTAMP)]

        self._cv = threading.Condition()
        self._pending: List[Tuple[int, List[np.ndarray], np.ndarray]] = []
        self._pending_rows = 0
        self._stop = False
        self.failed: Optional[BaseException] = None

        self._segments: List[SegmentInfo] = []
        self._handles: Dict[str, object] = {}
        self._next = 0       # next offset to assign
        self._durable = 0    # offsets below this are persisted
        self.recovered = False
        self.torn_rows = 0
        # counters
        self.groups = 0
        self.group_rows = 0
        self.max_group_rows = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.appends = 0
        self.retention_truncations = 0
        self.retention_rows = 0
        # per-sealed-segment (bytes, last __ts) cache for retention
        self._seg_cache: Dict[int, Tuple[int, Optional[int]]] = {}

        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST)
        if os.path.exists(manifest_path):
            self._open_existing(manifest_path)
        else:
            self._segments = [SegmentInfo(0, 0, False)]
            self._write_manifest()
        self._open_handles()

        self._writer: Optional[threading.Thread] = None
        if not self.inline:
            self._writer = threading.Thread(
                target=self._writer_loop, daemon=True,
                name=f"log-writer-{self.name}")
            self._writer.start()

    # -- offsets --------------------------------------------------------

    @property
    def next_offset(self) -> int:
        return self._next

    @property
    def durable_offset(self) -> int:
        """Offsets below this are on disk (flushed; also fsynced under
        ``durability="fsync"``). The basket's vacuum floor — data not
        yet durable must never be dropped from memory."""
        return self._durable

    @property
    def durable_floor(self) -> int:
        """Oldest offset the log still holds. 0 until retention has
        dropped a segment; readers asking below this either clamp
        (:meth:`read_clamped`) or fail (:meth:`read`)."""
        return self._segments[0].base if self._segments else 0

    def backlog_batches(self) -> int:
        return len(self._pending)

    def backlog_rows(self) -> int:
        return self._pending_rows

    # -- manifest -------------------------------------------------------

    def _manifest_json(self) -> dict:
        return {"version": _FORMAT_VERSION, "stream": self.name,
                "columns": [[c.name, c.dtype.name]
                            for c in self.schema.columns],
                "segment_rows": self.segment_rows,
                "segments": [s.to_json() for s in self._segments]}

    def _write_manifest(self) -> None:
        path = os.path.join(self.directory, MANIFEST)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(self._manifest_json(), f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    def sync_manifest(self) -> None:
        """Persist the current segment table (checkpoint hook)."""
        with self._cv:
            self._write_manifest()

    def _col_path(self, base: int, col: str) -> str:
        return os.path.join(self.directory, f"{base:012d}.{col}")

    # -- open / recovery ------------------------------------------------

    def _open_existing(self, manifest_path: str) -> None:
        try:
            with open(manifest_path) as f:
                manifest = json.load(f)
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"cannot read log manifest {manifest_path}: "
                f"{exc}") from exc
        if manifest.get("version") != _FORMAT_VERSION:
            raise StoreError(
                f"unsupported log format {manifest.get('version')!r}")
        declared = [[str(n).lower(), str(t)]
                    for n, t in manifest["columns"]]
        ours = [[c.name, c.dtype.name] for c in self.schema.columns]
        if declared != ours:
            raise StoreError(
                f"log {self.directory} was written with columns "
                f"{declared}, stream {self.name!r} now has {ours}")
        self.recovered = True
        segments = [SegmentInfo.from_json(s)
                    for s in manifest.get("segments", [])]
        kept: List[SegmentInfo] = []
        for i, info in enumerate(segments):
            counts = [seg.complete_rows(dtype,
                                        self._col_path(info.base, col))[0]
                      for col, dtype in self._cols]
            complete = min(counts) if counts else 0
            if info.sealed and complete >= info.rows:
                # trailing junk beyond a sealed segment's declared rows
                # is unreachable (reads index by the manifest), leave it
                kept.append(info)
                continue
            # the tail (or a damaged sealed segment): keep only whole
            # rows present in *every* column, truncate the rest
            declared_rows = info.rows if info.sealed \
                else (max(counts) if counts else 0)
            self.torn_rows += max(0, declared_rows - complete)
            for col, dtype in self._cols:
                path = self._col_path(info.base, col)
                extent = seg.row_byte_extent(dtype, path, complete)
                if os.path.exists(path):
                    if os.path.getsize(path) > extent:
                        os.truncate(path, extent)
                elif complete:
                    raise StoreError(f"segment column missing: {path}")
            info.rows = complete
            info.sealed = False
            kept.append(info)
            # anything after a truncated segment is unreachable
            for later in segments[i + 1:]:
                self._delete_segment_files(later.base)
            break
        if not kept:
            kept = [SegmentInfo(0, 0, False)]
        if kept[-1].sealed:
            kept.append(SegmentInfo(kept[-1].end, 0, False))
        self._segments = kept
        self._next = self._durable = kept[-1].end
        self._write_manifest()

    def _delete_segment_files(self, base: int) -> None:
        for col, _dtype in self._cols:
            path = self._col_path(base, col)
            try:
                os.remove(path)
            except OSError:
                pass

    def _open_handles(self) -> None:
        active = self._segments[-1]
        self._handles = {
            col: open(self._col_path(active.base, col), "ab")
            for col, _dtype in self._cols}

    def _close_handles(self) -> None:
        for f in self._handles.values():
            try:
                f.close()
            except OSError:
                pass
        self._handles = {}

    # -- appending ------------------------------------------------------

    def append(self, columns: Sequence[np.ndarray],
               arrival: np.ndarray) -> Tuple[int, int]:
        """Enqueue one admitted batch; returns its offset range
        ``[lo, hi)``. *columns* are storage arrays in schema order —
        ownership stays with the caller but they must not be mutated
        (the writer encodes them asynchronously)."""
        if self.failed is not None:
            raise StoreError(
                f"stream log {self.name!r} writer failed: {self.failed}")
        n = len(arrival)
        with self._cv:
            lo = self._next
            if n == 0:
                return lo, lo
            self._next += n
            if self.inline:
                self._write_group([(lo, list(columns), arrival)])
                return lo, lo + n
            self._pending.append((lo, list(columns), arrival))
            self._pending_rows += n
            self.appends += 1
            self._cv.notify_all()
        return lo, lo + n

    def flush(self, timeout: float = 30.0) -> int:
        """Barrier: block until everything appended so far is durable."""
        with self._cv:
            target = self._next
            deadline = time.monotonic() + timeout
            while self._durable < target:
                if self.failed is not None:
                    raise StoreError(
                        f"stream log {self.name!r} writer failed: "
                        f"{self.failed}")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise StoreError(
                        f"stream log {self.name!r}: flush timed out "
                        f"({self._durable}/{target} durable)")
                self._cv.wait(min(remaining, 0.1))
            return self._durable

    # -- writer ---------------------------------------------------------

    def _writer_loop(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._stop:
                    self._cv.wait(0.1)
                if not self._pending and self._stop:
                    return
                group = self._pending
                self._pending = []
                self._pending_rows = 0
            try:
                self._write_group(group)
            except InjectedCrash as exc:
                with self._cv:
                    self.failed = exc
                    self._cv.notify_all()
                return
            except Exception as exc:  # disk full, permissions, ...
                with self._cv:
                    self.failed = exc
                    self._cv.notify_all()
                return
            with self._cv:
                self._cv.notify_all()

    def _write_group(self, group: List[Tuple[int, List[np.ndarray],
                                             np.ndarray]]) -> None:
        """Persist a drained group: encode + write every batch, then one
        flush (and under ``fsync`` one fsync) per column file."""
        rows = 0
        for _lo, columns, arrival in group:
            for (col, dtype), values in zip(self._cols,
                                            list(columns) + [arrival]):
                data = seg.encode_values(dtype, values)
                self.bytes_written += len(data)
                seg.faulty_write(self._handles[col], data, self._fault)
            rows += len(arrival)
        for f in self._handles.values():
            f.flush()
            if self.durability == "fsync":
                os.fsync(f.fileno())
        if self.durability == "fsync":
            self.fsyncs += 1
        self.groups += 1
        self.group_rows += rows
        self.max_group_rows = max(self.max_group_rows, rows)
        active = self._segments[-1]
        active.rows += rows
        self._durable = active.end
        if active.rows >= self.segment_rows:
            self._seal_and_roll()

    def _seal_and_roll(self) -> None:
        self._close_handles()
        self._segments[-1].sealed = True
        self._segments.append(SegmentInfo(self._segments[-1].end, 0,
                                          False))
        self._write_manifest()
        self._open_handles()

    # -- reading --------------------------------------------------------

    def _empty_read(self, actual_lo: int
                    ) -> Tuple[Dict[str, np.ndarray], np.ndarray, int]:
        empty = {c.name: c.dtype.empty(0)
                 for c in self.schema.columns}
        return empty, dt.TIMESTAMP.empty(0), actual_lo

    def read_clamped(self, lo: int, hi: int
                     ) -> Tuple[Dict[str, np.ndarray], np.ndarray, int]:
        """Columns + arrivals for the *retained* part of ``[lo, hi)``.

        *hi* is clamped to the durable watermark and *lo* to the
        retention floor; the returned rows cover ``[actual_lo, hi)``
        with ``actual_lo >= lo``. ``actual_lo > lo`` means retention
        has discarded ``[lo, actual_lo)`` — the caller decides whether
        that gap is acceptable (a lagging subscriber catches up from
        the floor) or fatal (:meth:`read` raises, ``from_start``
        registration surfaces :class:`~repro.errors.ReplayGap`).
        Returns fresh owning arrays, ready for basket adoption.
        """
        lo = max(lo, 0)
        hi = min(hi, self._durable)
        if hi <= lo:
            return self._empty_read(lo)
        with self._cv:
            segments = list(self._segments)
        floor = segments[0].base if segments else 0
        actual_lo = min(max(lo, floor), hi)
        if hi <= actual_lo:
            return self._empty_read(actual_lo)
        parts: Dict[str, List[np.ndarray]] = \
            {col: [] for col, _ in self._cols}
        for info in segments:
            s_lo = max(actual_lo, info.base)
            s_hi = min(hi, info.end)
            if s_hi <= s_lo:
                continue
            start = s_lo - info.base
            count = s_hi - s_lo
            for col, dtype in self._cols:
                parts[col].append(seg.read_rows(
                    dtype, self._col_path(info.base, col), start, count))
        out: Dict[str, np.ndarray] = {}
        for col, dtype in self._cols:
            chunks = parts[col]
            if len(chunks) == 1:
                merged = chunks[0]
            else:
                merged = np.concatenate(chunks) if chunks \
                    else dtype.empty(0)
            out[col] = merged
        found = sum(len(c) for c in parts[ARRIVAL_COLUMN])
        if found != hi - actual_lo:
            raise StoreError(
                f"log {self.name!r}: read [{actual_lo},{hi}) found "
                f"{found} rows (segment table is inconsistent with "
                f"the column files)")
        arrival = out.pop(ARRIVAL_COLUMN)
        return out, arrival, actual_lo

    def read(self, lo: int, hi: int
             ) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
        """Columns + arrival timestamps for offsets ``[lo, hi)``.

        Only durable offsets are readable; *hi* is clamped to the
        durable watermark. Strict about the low end: raises
        :class:`StoreError` when ``[lo, hi)`` dips below the retention
        floor — use :meth:`read_clamped` to lag to the floor instead.
        """
        cols, arrival, actual_lo = self.read_clamped(lo, hi)
        if actual_lo > max(lo, 0):
            raise StoreError(
                f"log {self.name!r}: read [{lo},{hi}) dips below the "
                f"retention floor {actual_lo} "
                f"({actual_lo - max(lo, 0)} rows discarded)")
        return cols, arrival

    # -- truncation (recovery of regenerable output streams) ------------

    def truncate_to(self, offset: int) -> int:
        """Discard everything at or above *offset*; returns rows cut.

        Only valid while quiescent (recovery time): output-stream logs
        are rolled back to the last checkpoint so the producing query's
        re-fired windows regenerate — rather than duplicate — the tail.
        """
        with self._cv:
            if self._pending:
                raise StoreError("truncate_to with pending appends")
            offset = max(offset, 0)
            if offset >= self._next:
                return 0
            cut = self._next - offset
            self._close_handles()
            kept: List[SegmentInfo] = []
            for info in self._segments:
                if info.end <= offset:
                    kept.append(info)
                    continue
                if info.base >= offset:
                    self._delete_segment_files(info.base)
                    continue
                keep_rows = offset - info.base
                for col, dtype in self._cols:
                    path = self._col_path(info.base, col)
                    os.truncate(path, seg.row_byte_extent(
                        dtype, path, keep_rows))
                info.rows = keep_rows
                info.sealed = False
                kept.append(info)
            if not kept:
                kept = [SegmentInfo(0, 0, False)]
            if kept[-1].sealed:
                kept[-1].sealed = False
            self._segments = kept
            self._next = self._durable = kept[-1].end
            self._seg_cache.clear()
            self._write_manifest()
            self._open_handles()
            return cut

    # -- retention ------------------------------------------------------

    def segment_table(self) -> List[SegmentInfo]:
        """Snapshot of the segment table (copies, safe to hold)."""
        with self._cv:
            return [SegmentInfo(s.base, s.rows, s.sealed)
                    for s in self._segments]

    def column_path(self, base: int, col: str) -> str:
        """Path of one segment's column file (``__ts`` for arrivals)."""
        return self._col_path(base, col)

    def _segment_stats(self, info: SegmentInfo
                       ) -> Tuple[int, Optional[int]]:
        """``(bytes_on_disk, last_arrival_ts)`` of one segment; cached
        for sealed (immutable) segments."""
        cached = self._seg_cache.get(info.base)
        if cached is not None:
            return cached
        nbytes = 0
        for col, _dtype in self._cols:
            try:
                nbytes += os.path.getsize(self._col_path(info.base, col))
            except OSError:
                pass
        last_ts: Optional[int] = None
        if info.rows > 0:
            path = self._col_path(info.base, ARRIVAL_COLUMN)
            try:
                with open(path, "rb") as f:
                    f.seek((info.rows - 1) * 8)
                    raw = f.read(8)
                if len(raw) == 8:
                    last_ts = int(np.frombuffer(raw, dtype="<i8")[0])
            except OSError:
                last_ts = None
        result = (nbytes, last_ts)
        if info.sealed:
            self._seg_cache[info.base] = result
        return result

    def retained_bytes(self) -> int:
        with self._cv:
            segments = list(self._segments)
        return sum(self._segment_stats(s)[0] for s in segments)

    def apply_retention(self, now_ms: int,
                        protect_offset: Optional[int] = None) -> int:
        """Drop whole sealed segments per ``retain_ms``/``retain_bytes``.

        Only prefixes of *sealed* segments are droppable — never the
        unsealed tail, and never a segment reaching at or above
        *protect_offset* (the engine passes the minimum of the basket's
        retained floor and every checkpointed cursor, so recovery and
        paged windows always find what they still need). Age drops
        segments whose last arrival is older than ``retain_ms`` before
        *now_ms*; bytes drops oldest-first until the log fits in
        ``retain_bytes``. Returns rows discarded; the durable floor
        advances past them.

        Readers never block on this: sealed segment files are immutable
        and only ever unlinked, so an ``np.memmap`` bound before the
        unlink stays valid (POSIX keeps the inode alive until the last
        map goes away).
        """
        if self.retain_ms is None and self.retain_bytes is None:
            return 0
        with self._cv:
            segments = self._segments
            limit = len(segments) - 1  # never the active tail
            droppable = 0
            for info in segments[:limit]:
                if not info.sealed:
                    break
                if protect_offset is not None \
                        and info.end > protect_offset:
                    break
                droppable += 1
            if droppable == 0:
                return 0
            k = 0
            if self.retain_ms is not None:
                cutoff = now_ms - self.retain_ms
                while k < droppable:
                    _b, last_ts = self._segment_stats(segments[k])
                    if last_ts is None or last_ts >= cutoff:
                        break
                    k += 1
            if self.retain_bytes is not None:
                sizes = [self._segment_stats(s)[0] for s in segments]
                total = sum(sizes[k:])
                while total > self.retain_bytes and k < droppable:
                    total -= sizes[k]
                    k += 1
            if k == 0:
                return 0
            dropped = segments[:k]
            self._segments = segments[k:]
            rows = sum(s.rows for s in dropped)
            self.retention_truncations += 1
            self.retention_rows += rows
            self._write_manifest()
            for info in dropped:
                self._delete_segment_files(info.base)
                self._seg_cache.pop(info.base, None)
            return rows

    # -- lifecycle ------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Drain, stop the writer, and persist a clean manifest.

        If the writer thread does not stop within *timeout* it may
        still be appending — writing a "clean" manifest then would
        declare rows durable that a wedged write may never complete.
        In that case the log records a :class:`StoreError` in
        ``self.failed``, leaves the handles open for the stuck writer,
        and skips the manifest write; the next open recovers via the
        normal torn-tail scan.
        """
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        writer = self._writer
        if writer is not None:
            writer.join(timeout=timeout)
            if writer.is_alive():
                with self._cv:
                    if self.failed is None:
                        self.failed = StoreError(
                            f"stream log {self.name!r}: writer thread "
                            f"still running after {timeout:.0f}s close "
                            f"timeout; manifest not rewritten")
                    self._cv.notify_all()
                return
            self._writer = None
        with self._cv:
            if self.failed is None and self._pending:
                try:
                    self._write_group(self._pending)
                except (InjectedCrash, OSError) as exc:
                    self.failed = exc
                self._pending = []
                self._pending_rows = 0
            self._close_handles()
            if self.failed is None:
                self._write_manifest()

    def stats(self) -> Dict[str, object]:
        return {"durability": self.durability,
                "inline": self.inline,
                "segments": len(self._segments),
                "segment_rows": self.segment_rows,
                "next_offset": self._next,
                "durable_offset": self._durable,
                "durable_floor": self.durable_floor,
                "retain_ms": self.retain_ms,
                "retain_bytes": self.retain_bytes,
                "retention_truncations": self.retention_truncations,
                "retention_rows": self.retention_rows,
                "retained_bytes": self.retained_bytes(),
                "backlog_batches": self.backlog_batches(),
                "backlog_rows": self.backlog_rows(),
                "groups": self.groups,
                "group_rows": self.group_rows,
                "max_group_rows": self.max_group_rows,
                "fsyncs": self.fsyncs,
                "bytes_written": self.bytes_written,
                "recovered": int(self.recovered),
                "torn_rows": self.torn_rows,
                "failed": repr(self.failed) if self.failed else None}

    def __repr__(self) -> str:
        return (f"StreamLog({self.name}, next={self._next}, "
                f"durable={self._durable}, "
                f"segments={len(self._segments)})")
