"""Durability subsystem: per-stream segmented logs + crash recovery.

``repro.store`` persists every admitted stream tuple to an append-only
columnar log (:class:`~repro.store.log.StreamLog`) behind a
group-commit writer, and gives the engine what it needs to come back
from a crash: torn-tail truncation, zero-copy basket rebuilds, and the
offset coordinate system (log offset == basket oid) that subscriber
cursors and replay-on-subscribe ride on. The
:class:`~repro.store.paging.PagedWindowBinder` additionally binds
sealed segments as zero-copy BAT views so factories can window over
log-resident history without rehydrating it, and retention knobs
(``retain_ms``/``retain_bytes``) bound how much history the log keeps.
See ``docs/DURABILITY.md``.
"""

from repro.store.log import (ARRIVAL_COLUMN, DURABILITY_MODES,
                             DEFAULT_SEGMENT_ROWS, SegmentInfo,
                             StreamLog)
from repro.store.paging import PagedWindowBinder
from repro.store.segment import CRASH_ENV, FaultInjector

__all__ = ["ARRIVAL_COLUMN", "CRASH_ENV", "DEFAULT_SEGMENT_ROWS",
           "DURABILITY_MODES", "FaultInjector", "PagedWindowBinder",
           "SegmentInfo", "StreamLog"]
